"""The process-sharded serving cluster (scatter-gather coordinator).

Python's GIL caps the thread-based :class:`~repro.serve.engine.Engine`
at one core of query execution.  :class:`ClusterCoordinator` escapes it
with processes while keeping the expensive part — the built K-SPIN
index — shared:

* **Fork after build.**  Workers are forked *from the parent that built
  (or loaded) the index*, so the graph, ALT tables, distance oracle and
  every APX-NVD arrive via copy-on-write pages: no per-worker rebuild,
  no serialisation, O(pages touched) extra memory.  Under the ``spawn``
  start method (no ``fork`` on the platform, or explicitly requested)
  workers instead rehydrate from the persisted snapshot plus a replay
  of the update journal.
* **The parent stays authoritative.**  Every update is applied to the
  parent's own copy first and journaled, then fanned out to workers.  A
  worker that dies is re-forked from the parent (or re-spawned from
  snapshot + journal), so the replacement is always current — restarts
  lose no updates.
* **Placement is routing, not partitioning.**  Every worker holds the
  full index; the :mod:`~repro.serve.placement` router decides which
  worker(s) answer for throughput/cache-affinity.  Disjunctive BkNN
  queries spanning several keyword shards scatter and the coordinator
  merges with :func:`repro.api.merge_results`.
* **No request is lost.**  A request that hits a dead worker retries on
  the surviving workers and, as a last resort, runs on the parent's own
  in-process engine; the supervisor is kicked to restart the casualty
  in the background.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.analysis.lockdebug import make_lock
from repro.api import (
    Query,
    QueryResult,
    UpdateOp,
    ensure_supported,
    merge_results,
    merge_stat_dicts,
    stats_to_dict,
)
from repro.core.framework import KSpin
from repro.obs.events import EVENTS, merge_streams
from repro.obs.profile import PROFILER, merge_folded
from repro.obs.trace import TRACER, Span, attach, current_span
from repro.obs.trace import span as trace_span
from repro.serve.engine import Engine
from repro.serve.metrics import merge_latency_payloads
from repro.serve.ipc import WorkerDied, WorkerError, WorkerHandle, worker_main
from repro.serve.placement import KeywordShardRouter, ReplicateRouter
from repro.serve.supervisor import Supervisor
from repro.sketch.lossy import LossyCounter
from repro.sketch.registry import IndexSketches

#: Recognised placement policy names (CLI surface).
PLACEMENTS = ("replicate", "shard-by-keyword")


def _preferred_context(start_method: str | None) -> multiprocessing.context.BaseContext:
    """The requested or best-available multiprocessing context."""
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class ClusterCoordinator:
    """N worker processes behind one :class:`repro.api.Query` surface.

    Implements the same ``execute`` / ``apply`` / ``health`` /
    ``metrics_snapshot`` protocol as :class:`Engine`, so the HTTP tier
    (and any other caller) is backend-agnostic.

    Parameters
    ----------
    kspin:
        The built framework; stays authoritative in the parent.
    num_workers:
        Worker process count (the cluster size).
    placement:
        ``"replicate"`` or ``"shard-by-keyword"``.
    cache_size:
        Per-worker result-cache capacity (0 disables worker caches).
    start_method:
        Force ``"fork"`` or ``"spawn"``; default prefers fork.
    snapshot_path:
        Persisted index image for spawn-mode rehydration.  Written on
        demand (to a temp file, cleaned up on close) when absent.
    supervise:
        Run the background health checker (on by default).
    sketch_routing:
        Build an :class:`~repro.sketch.registry.IndexSketches` registry
        at fork time and let the router prune provably-empty keywords
        and shards (on by default; recall-safe because Bloom filters
        have no false negatives).
    sketch_fp_rate:
        Configured Bloom false-positive bound for the shard filters.
    """

    def __init__(
        self,
        kspin: KSpin,
        num_workers: int = 2,
        placement: str = "replicate",
        cache_size: int = 1024,
        start_method: str | None = None,
        snapshot_path: str | None = None,
        supervise: bool = True,
        health_interval: float = 1.0,
        ping_timeout: float = 2.0,
        sketch_routing: bool = True,
        sketch_fp_rate: float = 0.01,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        if placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {placement!r}"
            )
        self._kspin = kspin
        self.num_workers = num_workers
        self.placement = placement
        self.cache_size = cache_size
        self._ctx = _preferred_context(start_method)
        self._snapshot_path = snapshot_path
        self._owns_snapshot = False
        # The parent's own engine: authoritative update target and the
        # no-worker-left fallback.  Cache disabled — the parent answers
        # rarely and must never serve a result its workers would not.
        self._fallback = Engine(kspin, cache_size=0)
        # Per-shard Bloom filters + per-keyword HLLs, built once in the
        # parent before forking; workers inherit their own copies via
        # Engine construction.  Updates are folded in under the update
        # lock, so routing decisions always reflect every applied op.
        self.sketches: IndexSketches | None = (
            IndexSketches.from_index(
                kspin.index, num_shards=num_workers, fp_rate=sketch_fp_rate
            )
            if sketch_routing
            else None
        )
        if placement == "replicate":
            self.router = ReplicateRouter(num_workers, sketches=self.sketches)
        else:
            self.router = KeywordShardRouter(
                num_workers,
                inverted_size=kspin.index.inverted_size,
                sketches=self.sketches,
            )
        self.workers: list[WorkerHandle | None] = [None] * num_workers
        self._journal: list[dict] = []
        # Reentrant: apply() restarts diverged workers while holding it.
        self._update_lock = make_lock("cluster.update", rlock=True)
        # Request-path counters share no state with updates: their own
        # small mutex keeps the hot dispatch path off the update lock
        # (KSP002: `+=` on an attribute is not atomic, even under the GIL).
        self._stats_lock = make_lock("cluster.stats")
        self._pool: ThreadPoolExecutor | None = None
        self.supervisor = Supervisor(
            self, interval=health_interval, ping_timeout=ping_timeout
        )
        self._supervise = supervise
        self._started = False
        self.updates_applied = 0
        self.fallback_queries = 0
        self.retried_requests = 0
        self.dispatches = 0
        self.sketch_skipped_shards = 0
        self.sketch_short_circuits = 0
        self.last_error: str | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ClusterCoordinator":
        """Fork the workers and start supervision (idempotent)."""
        if self._started:
            return self
        with self._update_lock:
            for index in range(self.num_workers):
                self.workers[index] = self._spawn_worker(index)
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers,
                thread_name_prefix="cluster-scatter",
            )
            self._started = True
        if self._supervise:
            self.supervisor.start()
        return self

    def close(self) -> None:
        """Stop supervision, shut workers down, release resources."""
        self.supervisor.stop()
        with self._update_lock:
            for index, handle in enumerate(self.workers):
                if handle is not None:
                    handle.close()
                    self.workers[index] = None
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            self._started = False
            if self._owns_snapshot and self._snapshot_path:
                try:
                    os.unlink(self._snapshot_path)
                except OSError as error:
                    self.last_error = f"snapshot cleanup: {error}"
                self._owns_snapshot = False

    def __enter__(self) -> "ClusterCoordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker management
    # ------------------------------------------------------------------
    def _spawn_worker(self, index: int) -> WorkerHandle:
        name = f"worker-{index}"
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        if self._ctx.get_start_method() == "fork":
            # The built index rides into the child via copy-on-write.
            process = self._ctx.Process(
                target=worker_main,
                args=(child_conn, name, self._kspin, self.cache_size),
                name=name,
                daemon=True,
            )
        else:
            # Spawn cannot inherit memory: rehydrate from the snapshot
            # and replay every update applied since it was written.
            process = self._ctx.Process(
                target=worker_main,
                kwargs={
                    "conn": child_conn,
                    "name": name,
                    "kspin": None,
                    "cache_size": self.cache_size,
                    "snapshot_path": self._ensure_snapshot(),
                    "journal": list(self._journal),
                },
                name=name,
                daemon=True,
            )
        process.start()
        child_conn.close()
        EVENTS.emit(
            "worker.spawn",
            worker=name,
            mode=self._ctx.get_start_method(),
            pid=process.pid,
        )
        return WorkerHandle(name, process, parent_conn)

    def _ensure_snapshot(self) -> str:  # ksp: holds[self._update_lock]
        if self._snapshot_path is None:
            from repro.persist import save_kspin

            fd, path = tempfile.mkstemp(prefix="kspin-cluster.", suffix=".idx")
            os.close(fd)
            save_kspin(self._kspin, path)
            self._snapshot_path = path
            self._owns_snapshot = True
        elif not os.path.exists(self._snapshot_path):
            from repro.persist import save_kspin

            save_kspin(self._kspin, self._snapshot_path)
        return self._snapshot_path

    def restart_worker(self, index: int) -> WorkerHandle:
        """Replace worker ``index`` with a fresh, fully-current process.

        Under the update lock so the replacement can never be forked
        mid-update: it inherits (fork) or replays (spawn) exactly the
        updates the parent has fully applied.
        """
        with self._update_lock:
            old = self.workers[index]
            restarts = old.restarts + 1 if old is not None else 1
            if old is not None:
                if not old.is_alive():
                    EVENTS.emit(
                        "worker.death", worker=old.name, restarts=restarts
                    )
                old.close()
            handle = self._spawn_worker(index)
            handle.restarts = restarts
            self.workers[index] = handle
            EVENTS.emit(
                "worker.restart", worker=handle.name, restarts=restarts
            )
            return handle

    def _alive_indexes(self) -> list[int]:
        return [
            i for i, h in enumerate(self.workers)
            if h is not None and h.is_alive()
        ]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def execute(self, query: Query) -> QueryResult:
        """Route one query: a thin shim over a one-element batch."""
        return self.execute_many((query,))[0]

    def execute_many(self, queries: Sequence[Query]) -> list[QueryResult]:
        """Route a batch of queries with one pipe round-trip per worker.

        The native batch path (``execute`` is a one-element batch):
        every query is planned individually (so Bloom short-circuits
        and shard skipping stay per-query exact), the per-worker
        sub-queries are grouped, and each worker receives its whole
        share in **one** ``query_batch`` IPC request.  Gathering is one
        reply per worker; scattered queries are merged per-query with
        :func:`repro.api.merge_results`.  Result-identical (same hits
        per query, in order) to sequential execution.
        """
        queries = list(queries)
        if not queries:
            return []
        for query in queries:
            ensure_supported(query, "cluster")
        if not self._started:
            self.start()
        with trace_span(
            "cluster.execute",
            kind=queries[0].kind,
            batch=len(queries),
        ):
            results: list[QueryResult | None] = [None] * len(queries)
            # Plan each query, then group (query-index, sub-query)
            # pairs per target worker so one pipe round-trip carries a
            # worker's entire share of the batch.
            per_worker: dict[int, list[tuple[int, Query]]] = {}
            scatter_k: dict[int, int] = {}
            short_circuits = dispatches = skipped = 0
            inflight = self._inflight()
            for i, query in enumerate(queries):
                plan = self.router.plan(query, inflight)
                if plan.empty:
                    # The sketches proved no shard can contribute a
                    # hit: answer without touching a single worker.
                    # Bloom "no" has no false negatives, so this is
                    # exact, not a guess.
                    short_circuits += 1
                    with trace_span("cluster.sketch_short_circuit"):
                        results[i] = QueryResult(
                            hits=(), stats=stats_to_dict(None)
                        )
                    continue
                dispatches += len(plan.assignments)
                skipped += len(plan.skipped)
                for target, subquery in plan.assignments.items():
                    per_worker.setdefault(target, []).append((i, subquery))
                if plan.scatter:
                    scatter_k[i] = max(
                        subquery.k
                        for subquery in plan.assignments.values()
                    )
            with self._stats_lock:
                self.sketch_short_circuits += short_circuits
                self.dispatches += dispatches
                self.sketch_skipped_shards += skipped
            if per_worker:
                assert self._pool is not None
                # True batches (size > 1) leave a scatter/gather pair in
                # the flight recorder; single queries stay silent — the
                # hot path must not flood the ring.
                if len(queries) > 1:
                    EVENTS.emit(
                        "batch.scatter",
                        queries=len(queries),
                        targets=sorted(per_worker),
                    )
                parent = current_span()
                futures = {
                    target: self._pool.submit(
                        self._dispatch_batch, target, items, parent
                    )
                    for target, items in per_worker.items()
                }
                gathered: dict[int, list[QueryResult]] = {}
                for target, future in futures.items():
                    for (i, _), part in zip(per_worker[target], future.result()):
                        gathered.setdefault(i, []).append(part)
                for i, parts in gathered.items():
                    if i in scatter_k:
                        with trace_span("cluster.merge", parts=len(parts)):
                            results[i] = merge_results(parts, scatter_k[i])
                    else:
                        results[i] = parts[0]
                if len(queries) > 1:
                    EVENTS.emit("batch.gather", queries=len(gathered))
            return [result for result in results if result is not None]

    def _inflight(self) -> list[int]:
        return [
            h.inflight if h is not None and h.is_alive() else 1 << 20
            for h in self.workers
        ]

    def _dispatch_batch(
        self,
        target: int,
        items: Sequence[tuple[int, Query]],
        parent: Span | None = None,
    ) -> list[QueryResult]:
        """Run a worker's whole batch share in one pipe round-trip.

        ``items`` is this worker's ``(query-index, sub-query)`` share;
        the reply is order-aligned with it.  On worker death the
        *whole sub-batch* retries on the survivors (any worker holds
        the full index), and a fleet with no survivors falls back to
        the parent's in-process engine — still through the batch path.
        A :class:`~repro.serve.ipc.WorkerError` (the worker *answered*,
        with an error) is deterministic and propagates without retry.

        When a trace is active (directly or via ``parent`` from a
        scatter thread), the trace ID rides the batch payload to the
        worker and the worker's span tree is grafted back under the
        dispatch span.
        """
        with attach(parent), trace_span(
            "cluster.dispatch", target=target, batch=len(items)
        ) as dspan:
            attempts = [target] + [
                i for i in range(self.num_workers) if i != target
            ]
            died = False
            for attempt in attempts:
                handle = self.workers[attempt]
                if handle is None or not handle.is_alive():
                    continue
                payload: dict = {
                    "queries": [subquery.to_dict() for _, subquery in items]
                }
                if dspan.trace_id:
                    payload["trace_id"] = dspan.trace_id
                try:
                    body = handle.request("query_batch", payload)
                except WorkerDied:
                    died = True
                    self.supervisor.kick()
                    continue
                if died:
                    with self._stats_lock:
                        self.retried_requests += 1
                worker_trace = (
                    body.get("trace") if isinstance(body, dict) else None
                )
                if worker_trace:
                    dspan.graft(Span.from_dict(worker_trace))
                return [
                    QueryResult.from_dict(item) for item in body["results"]
                ]
            if died:
                with self._stats_lock:
                    self.retried_requests += 1
            with self._stats_lock:
                self.fallback_queries += len(items)
            dspan.annotate(fallback=True)
            return self._fallback.execute_many(
                [subquery for _, subquery in items]
            )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def apply(self, op: UpdateOp) -> dict:
        """Apply one update everywhere: parent first, then fan out.

        The parent is authoritative — if it rejects the op (unknown
        object, bad keyword) nothing is journaled or fanned out.  A
        worker that fails the fan-out (died, or diverged enough to
        error) is restarted from the now-current parent, which already
        includes this op; restarts therefore never lose updates.
        """
        with self._update_lock:
            summary = self._fallback.apply(op)
            self._journal.append(op.to_dict())
            self.updates_applied += 1
            if self.sketches is not None:
                # Folded only after the parent accepted the op, so the
                # router never trusts bits for a rejected update.
                # Inserts extend the Bloom/HLL state exactly; deletes
                # stale it (insert-only sketches) until the refresh
                # threshold triggers a rebuild from the live index.
                self.sketches.apply_update(
                    op.op, op.touched_keywords(), op.object
                )
                if self.sketches.needs_refresh():
                    self.sketches.refresh(self._kspin.index)
                    EVENTS.emit(
                        "sketch.refresh", updates=self.updates_applied
                    )
            evicted = 0
            for index, handle in enumerate(self.workers):
                if handle is None:
                    continue
                try:
                    worker_summary = handle.request("update", op.to_dict())
                    evicted += int(worker_summary.get("cache_evicted", 0))
                except (WorkerDied, WorkerError):
                    if self._started:
                        self.restart_worker(index)
            summary["cache_evicted"] = evicted
            return summary

    # ------------------------------------------------------------------
    # Observability scatter (flight recorder + profiler)
    # ------------------------------------------------------------------
    def events_snapshot(self) -> list[dict]:
        """One causally-ordered event record for the whole cluster.

        Gathers every live worker's flight-recorder stream over the
        ``events`` IPC verb and merges it with the coordinator's own —
        per-worker sequence order is preserved unconditionally, so the
        merged record reconstructs e.g. a SIGKILL restart: the
        coordinator's ``worker.death``/``worker.spawn`` interleaved with
        the replacement's ``worker.start`` (``mode=fork|rehydrate``).
        A worker that dies mid-gather contributes nothing this call;
        its history re-merges once the supervisor's replacement starts.
        """
        streams: list[list[dict]] = [EVENTS.events()]
        for handle in self.workers:
            if handle is None or not handle.is_alive():
                continue
            try:
                body = handle.request("events", {"since_seq": 0})
                streams.append(list(body.get("events") or []))
            except (WorkerDied, WorkerError):
                self.supervisor.kick()
        return merge_streams(streams)

    def profile(self, action: str, hz: float | None = None) -> dict:
        """Cluster-wide profiler control: scatter, then merge stacks.

        ``action`` (``start``/``stop``/``status``/``reset``) applies to
        the coordinator's own profiler *and* every live worker's (the
        query CPU burns in the workers; the coordinator only shepherds
        pipes).  Folded stacks come back prefixed with their process
        name, so one flame graph shows the fleet side by side.
        """
        payload = {"action": action, "hz": hz}
        if action == "start":
            PROFILER.start(hz=hz)
        elif action == "stop":
            PROFILER.stop()
        elif action == "reset":
            PROFILER.reset()
        snapshots = [PROFILER.snapshot()]
        folded: list[dict] = [
            {
                f"{PROFILER.source};{stack}": count
                for stack, count in PROFILER.folded().items()
            }
        ]
        for handle in self.workers:
            if handle is None or not handle.is_alive():
                continue
            try:
                body = handle.request("profile", payload)
            except (WorkerDied, WorkerError):
                self.supervisor.kick()
                continue
            snapshot = body.get("snapshot") or {}
            snapshots.append(snapshot)
            source = snapshot.get("source") or handle.name
            folded.append(
                {
                    f"{source};{stack}": count
                    for stack, count in (body.get("folded") or {}).items()
                }
            )
        return {
            "action": action,
            "enabled": any(snap.get("enabled") for snap in snapshots),
            "profilers": snapshots,
            "folded": merge_folded(folded),
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Cluster liveness: per-worker status plus parent index facts."""
        base = self._fallback.health()
        alive = self._alive_indexes()
        base.update(
            {
                "status": "ok" if len(alive) == self.num_workers else "degraded",
                "placement": self.placement,
                "workers": {
                    "total": self.num_workers,
                    "alive": len(alive),
                    "restarts": sum(
                        h.restarts for h in self.workers if h is not None
                    ),
                },
                "updates_applied": self.updates_applied,
                "journal_length": len(self._journal),
                "sketch_routing": self.sketches is not None,
            }
        )
        return base

    def metrics_snapshot(self) -> dict:
        """Aggregated per-worker metrics plus coordinator counters.

        Matches :meth:`Engine.metrics_snapshot`'s shape at the top level
        (summed across workers) and adds a ``cluster`` section with the
        per-worker breakdown, so ``/metrics`` dashboards work unchanged
        against either backend.
        """
        per_worker: dict[str, dict] = {}
        for handle in self.workers:
            if handle is None or not handle.is_alive():
                continue
            try:
                per_worker[handle.name] = handle.request("metrics", None)
            except (WorkerDied, WorkerError):
                self.supervisor.kick()
        merged = self._merge_metrics(list(per_worker.values()))
        merged["cluster"] = {
            "placement": self.placement,
            "workers": self.num_workers,
            "alive": len(self._alive_indexes()),
            "restarts": sum(
                h.restarts for h in self.workers if h is not None
            ),
            "supervisor_sweeps": self.supervisor.sweeps,
            "supervisor_sweep_errors": self.supervisor.sweep_errors,
            "supervisor_last_error": self.supervisor.last_error,
            "fallback_queries": self.fallback_queries,
            "retried_requests": self.retried_requests,
            "dispatches": self.dispatches,
            "sketch_skipped_shards": self.sketch_skipped_shards,
            "sketch_short_circuits": self.sketch_short_circuits,
            "updates_applied": self.updates_applied,
            "worker_status": {
                handle.name: {
                    "alive": handle.is_alive(),
                    "restarts": handle.restarts,
                    "inflight": handle.inflight,
                    "requests": handle.requests,
                }
                for handle in self.workers
                if handle is not None
            },
            "per_worker": per_worker,
        }
        if self.sketches is not None:
            merged["sketch"] = self.sketches.snapshot()
        progress = getattr(self._kspin.index, "build_progress", None)
        if progress is not None:
            merged["nvd_build"] = progress.snapshot()
        merged["tracing"] = TRACER.snapshot()
        return merged

    @staticmethod
    def _merge_metrics(snapshots: list[dict]) -> dict:
        """Fold worker snapshots: counters add, histograms merge exactly.

        Every latency block carries its raw bucket payload, and the
        fixed bucket layout makes merging lossless — the reported
        percentiles are exactly those of the pooled per-worker samples
        (pinned by the cross-worker merge property test), not the old
        count-weighted-mean / worst-worker-tail approximation.
        """
        merged: dict = {
            "requests": {},
            "requests_total": 0,
            "errors": {},
            "shed": 0,
            "timeouts": 0,
            "rate_limited": 0,
            "queries_served": 0,
            "cache": {
                "capacity": 0,
                "entries": 0,
                "hits": 0,
                "misses": 0,
                "invalidations": 0,
            },
        }
        histogram_keys = ("latency", "error_latency", "query_latency")
        pooled: dict[str, list[dict]] = {key: [] for key in histogram_keys}
        endpoints: dict[str, list[dict]] = {}
        stages: dict[str, list[dict]] = {}
        for snap in snapshots:
            for endpoint, count in snap.get("requests", {}).items():
                merged["requests"][endpoint] = (
                    merged["requests"].get(endpoint, 0) + count
                )
            merged["requests_total"] += snap.get("requests_total", 0)
            for endpoint, count in snap.get("errors", {}).items():
                merged["errors"][endpoint] = (
                    merged["errors"].get(endpoint, 0) + count
                )
            merged["shed"] += snap.get("shed", 0)
            merged["timeouts"] += snap.get("timeouts", 0)
            merged["rate_limited"] += snap.get("rate_limited", 0)
            merged["queries_served"] += snap.get("queries_served", 0)
            for name in ("capacity", "entries", "hits", "misses", "invalidations"):
                merged["cache"][name] += snap.get("cache", {}).get(name, 0)
            for key in histogram_keys:
                block = snap.get(key)
                if isinstance(block, dict) and "buckets" in block:
                    pooled[key].append(block)
            for endpoint, block in (snap.get("endpoints") or {}).items():
                endpoints.setdefault(endpoint, []).append(block)
            for stage, block in (snap.get("stages") or {}).items():
                stages.setdefault(stage, []).append(block)
        merged["query_stats"] = merge_stat_dicts(
            snap.get("query_stats", {}) for snap in snapshots
        )
        # Hot-keyword admission: merge the per-worker lossy counters so
        # cluster-wide heat reflects every worker's traffic (the merged
        # counter keeps the Manku–Motwani error bound over the pooled
        # stream), then sum the plain admission counters.
        admissions = [
            snap["cache"]["admission"]
            for snap in snapshots
            if isinstance(snap.get("cache", {}).get("admission"), dict)
        ]
        if admissions:
            pooled_heat: LossyCounter | None = None
            block: dict = {"admitted": 0, "rejected": 0, "observed": 0}
            for payload in admissions:
                for name in ("admitted", "rejected", "observed"):
                    block[name] += payload.get(name, 0)
                counter_payload = payload.get("counter")
                if counter_payload:
                    counter = LossyCounter.from_dict(counter_payload)
                    if pooled_heat is None:
                        pooled_heat = counter
                    else:
                        pooled_heat.merge(counter)
            if pooled_heat is not None:
                block["counter"] = pooled_heat.to_dict()
                block["top"] = pooled_heat.top(10)
                block["tracked"] = len(pooled_heat)
            merged["cache"]["admission"] = block
        lookups = merged["cache"]["hits"] + merged["cache"]["misses"]
        merged["cache"]["hit_rate"] = (
            merged["cache"]["hits"] / lookups if lookups else 0.0
        )
        for key in histogram_keys:
            merged[key] = merge_latency_payloads(pooled[key])
        merged["endpoints"] = {
            endpoint: merge_latency_payloads(blocks)
            for endpoint, blocks in sorted(endpoints.items())
        }
        merged["stages"] = {
            stage: merge_latency_payloads(blocks)
            for stage, blocks in sorted(stages.items())
        }
        return merged
