"""Serving metrics: request counters, latency percentiles, cost totals.

The paper reports throughput (Table 1) and per-query operation counts
(§5.1); a long-running server additionally needs tail latency and
saturation signals.  :class:`ServerMetrics` aggregates, thread-safely:

* per-endpoint request/error/shed counters,
* latency percentiles (p50/p95/p99) over a bounded reservoir,
* aggregated :class:`~repro.core.query_processor.QueryStats` counters —
  the §5.1 cost model summed over every served query.
"""

from __future__ import annotations

import math
import random
import threading

from repro.core.query_processor import QueryStats


class LatencyRecorder:
    """Bounded reservoir of latency samples with percentile queries.

    Keeps an exact window until ``capacity`` samples, then switches to
    uniform reservoir sampling so long runs stay O(capacity) memory
    while percentiles remain unbiased.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._samples: list[float] = []
        self._rng = random.Random(seed)
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if len(self._samples) < self._capacity:
            self._samples.append(seconds)
            return
        slot = self._rng.randrange(self.count)
        if slot < self._capacity:
            self._samples[slot] = seconds

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of recorded latencies; 0 if none."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def mean(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


class ServerMetrics:
    """All serving counters behind one mutex, snapshot for ``/metrics``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latency = LatencyRecorder()
        self._requests: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self.shed = 0
        self.timeouts = 0
        self._stats_totals = QueryStats()
        self.queries_served = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, endpoint: str, seconds: float, error: bool = False) -> None:
        """One completed request (successful or errored, not shed)."""
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
            if error:
                self._errors[endpoint] = self._errors.get(endpoint, 0) + 1
            else:
                self._latency.record(seconds)

    def record_shed(self) -> None:
        """One request rejected by admission control (503)."""
        with self._lock:
            self.shed += 1

    def record_timeout(self) -> None:
        """One request that missed its deadline (504)."""
        with self._lock:
            self.timeouts += 1

    def record_query_stats(self, stats: QueryStats, cached: bool = False) -> None:
        """Fold one query's §5.1 cost counters into the running totals.

        Cache hits pass ``cached=True`` and contribute no new work — the
        totals then measure what the backend actually executed.
        """
        with self._lock:
            self.queries_served += 1
            if cached:
                return
            totals = self._stats_totals
            totals.iterations += stats.iterations
            totals.distance_computations += stats.distance_computations
            totals.lower_bound_computations += stats.lower_bound_computations
            totals.heap_insertions += stats.heap_insertions
            totals.heaps_created += stats.heaps_created

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready view of every counter (the ``/metrics`` body)."""
        with self._lock:
            totals = self._stats_totals
            return {
                "requests": dict(self._requests),
                "requests_total": sum(self._requests.values()),
                "errors": dict(self._errors),
                "shed": self.shed,
                "timeouts": self.timeouts,
                "queries_served": self.queries_served,
                "latency": {
                    "count": self._latency.count,
                    "mean_ms": self._latency.mean() * 1000.0,
                    "p50_ms": self._latency.percentile(50) * 1000.0,
                    "p95_ms": self._latency.percentile(95) * 1000.0,
                    "p99_ms": self._latency.percentile(99) * 1000.0,
                },
                "query_stats": {
                    "iterations": totals.iterations,
                    "distance_computations": totals.distance_computations,
                    "lower_bound_computations": totals.lower_bound_computations,
                    "heap_insertions": totals.heap_insertions,
                    "heaps_created": totals.heaps_created,
                },
            }
