"""Serving metrics: request counters, mergeable latency histograms, cost totals.

The paper reports throughput (Table 1) and per-query operation counts
(§5.1); a long-running server additionally needs tail latency and
saturation signals.  :class:`ServerMetrics` aggregates, thread-safely:

* per-endpoint request/error/shed counters,
* latency **histograms** (:class:`~repro.obs.histogram.LogHistogram`)
  for successful requests, errored requests (error-path slowness is a
  real signal, not noise to discard), per endpoint, per traced stage,
  and for engine-side query execution — all with fixed log buckets, so
  per-worker histograms merge losslessly and cluster percentiles are the
  percentiles of the pooled samples,
* aggregated :class:`~repro.core.query_processor.QueryStats` counters —
  the §5.1 cost model summed over every served query.

The pre-observability sampling reservoir is gone: reservoir percentiles
cannot be combined across processes, which made the cluster's tail
numbers unreliable exactly where they mattered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.analysis.lockdebug import make_lock
from repro.core.query_processor import QueryStats
from repro.obs.histogram import LogHistogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Span


class LatencyRecorder(LogHistogram):
    """A latency histogram in seconds (kept under the historical name).

    Formerly a bounded sampling reservoir; now a fixed log-bucketed
    histogram so recorders merge exactly across threads, processes, and
    cluster workers.  Memory is constant (sparse buckets over a fixed
    layout) and ``count``/``total``/min/max are exact.
    """

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded latencies (legacy accessor)."""
        return self.total


def merge_latency_payloads(payloads: Iterable[Mapping]) -> dict:
    """Merge worker latency payloads into one ``summary_ms`` block.

    Each payload is a :meth:`LogHistogram.summary_ms` dict (the shape
    every ``/metrics`` latency section uses); the result's percentiles
    are exactly those of the pooled samples.
    """
    return LogHistogram.merged(
        LogHistogram.from_dict(payload) for payload in payloads
    ).summary_ms()


class ServerMetrics:
    """All serving counters behind one mutex, snapshot for ``/metrics``."""

    def __init__(self) -> None:
        self._lock = make_lock("metrics")
        self._latency = LatencyRecorder()
        self._error_latency = LatencyRecorder()
        self._query_latency = LatencyRecorder()
        self._endpoint_latency: dict[str, LatencyRecorder] = {}
        self._stage_latency: dict[str, LatencyRecorder] = {}
        self._requests: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self.shed = 0
        self.timeouts = 0
        self.rate_limited = 0
        self._stats_totals = QueryStats()
        self.queries_served = 0
        self._batch_size = LogHistogram()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, endpoint: str, seconds: float, error: bool = False) -> None:
        """One completed request (successful or errored, not shed).

        Errored requests keep their latency too — in a dedicated
        histogram, so a slow error path (worker retry walks, deadline
        near-misses, failing backends) is visible instead of silently
        discarded, without polluting the success percentiles.
        """
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
            if error:
                self._errors[endpoint] = self._errors.get(endpoint, 0) + 1
                self._error_latency.record(seconds)
                return
            self._latency.record(seconds)
            recorder = self._endpoint_latency.get(endpoint)
            if recorder is None:
                recorder = self._endpoint_latency[endpoint] = LatencyRecorder()
            recorder.record(seconds)

    def record_shed(self, seconds: float | None = None) -> None:
        """One request rejected by admission control (503).

        ``seconds`` (time spent before the rejection) lands in the
        error-latency histogram: a 503 that took a while queueing is a
        saturation signal, not noise.
        """
        with self._lock:
            self.shed += 1
            if seconds is not None:
                self._error_latency.record(seconds)

    def record_timeout(self, seconds: float | None = None) -> None:
        """One request that missed its deadline (504)."""
        with self._lock:
            self.timeouts += 1
            if seconds is not None:
                self._error_latency.record(seconds)

    def record_rate_limited(self, seconds: float | None = None) -> None:
        """One request rejected by the per-client rate limiter (429).

        Counted apart from shed (503) and deadline (504): a 429 is the
        *client* exceeding its budget, not the server saturating — the
        dashboards must never conflate the two.
        """
        with self._lock:
            self.rate_limited += 1
            if seconds is not None:
                self._error_latency.record(seconds)

    def record_query_stats(
        self,
        stats: QueryStats,
        cached: bool = False,
        seconds: float | None = None,
    ) -> None:
        """Fold one query's §5.1 cost counters into the running totals.

        Cache hits pass ``cached=True`` and contribute no new work — the
        totals then measure what the backend actually executed.
        ``seconds`` (when the engine timed the execution) feeds the
        engine-side query-latency histogram, the per-worker series the
        cluster merges for its fleet percentiles.
        """
        with self._lock:
            self.queries_served += 1
            if seconds is not None:
                self._query_latency.record(seconds)
            if not cached:
                self._stats_totals.merge(stats)

    def record_batch(self, size: int) -> None:
        """One ``/v1/batch`` request carrying ``size`` queries.

        The distribution (not just a mean) matters: a fleet mixing
        batch-1 probes with batch-128 bulk readers looks healthy on
        averages while the tail drives queueing — the histogram keeps
        both visible.
        """
        with self._lock:
            self._batch_size.record(float(size))

    def record_stage(self, stage: str, seconds: float) -> None:
        """One per-query total for a traced stage (span or timer name)."""
        with self._lock:
            recorder = self._stage_latency.get(stage)
            if recorder is None:
                recorder = self._stage_latency[stage] = LatencyRecorder()
            recorder.record(seconds)

    def record_trace(self, root: "Span") -> None:
        """Tracer sink: fold one finished trace into per-stage histograms.

        Records, per trace, the total time under each distinct span name
        (the structural stages) and each aggregate timer (the hot §5.1
        operations: exact distances, lower bounds, LAZYREHEAP walks) —
        so ``stages`` answers "where does a typical query spend time?"
        with a real distribution per stage, mergeable across workers.
        """
        totals: dict[str, float] = {}
        for node in root.walk():
            if node is not root:
                totals[node.name] = totals.get(node.name, 0.0) + node.duration
            for name, (_count, seconds) in node.timers.items():
                totals[name] = totals.get(name, 0.0) + seconds
        for stage, seconds in totals.items():
            self.record_stage(stage, seconds)

    # ------------------------------------------------------------------
    # SLO probes (cumulative (total, bad) counts for obs.slo trackers)
    # ------------------------------------------------------------------
    def slo_latency_counts(self, threshold_seconds: float) -> tuple[int, int]:
        """Cumulative ``(total, over-threshold)`` successful-request counts.

        Derived from the success-latency histogram's buckets: a request
        is *bad* when its whole bucket lies above the threshold — the
        same bucket-granularity rule the Prometheus ``_bucket`` series
        uses, so the SLO engine and the dashboards agree.
        """
        with self._lock:
            total = self._latency.count
            good = self._latency.cumulative([threshold_seconds])[0][1]
            return total, total - good

    def slo_availability_counts(self) -> tuple[int, int]:
        """Cumulative ``(total, bad)`` for availability objectives.

        *Bad* is server-fault outcomes: errored, shed (503), and
        deadline-missed (504) requests.  Rate-limited (429) is the
        client exceeding its budget and is excluded from both counts.
        """
        with self._lock:
            errors = sum(self._errors.values())
            total = sum(self._requests.values()) + self.shed + self.timeouts
            return total, errors + self.shed + self.timeouts

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready view of every counter (the ``/metrics`` body).

        Latency blocks carry the classic ``count``/``mean_ms``/``p50_ms``
        /``p95_ms``/``p99_ms`` keys plus the raw bucket payload, which is
        what cluster coordinators merge for exact fleet percentiles.
        """
        with self._lock:
            return {
                "requests": dict(self._requests),
                "requests_total": sum(self._requests.values()),
                "errors": dict(self._errors),
                "shed": self.shed,
                "timeouts": self.timeouts,
                "rate_limited": self.rate_limited,
                "queries_served": self.queries_served,
                "latency": self._latency.summary_ms(),
                "error_latency": self._error_latency.summary_ms(),
                "query_latency": self._query_latency.summary_ms(),
                "endpoints": {
                    endpoint: recorder.summary_ms()
                    for endpoint, recorder in self._endpoint_latency.items()
                },
                "stages": {
                    stage: recorder.summary_ms()
                    for stage, recorder in self._stage_latency.items()
                },
                "query_stats": self._stats_totals.to_dict(),
                "batch_size": {
                    # Unit-less (query counts, not seconds): the raw
                    # bucket payload merges like every other histogram.
                    **self._batch_size.to_dict(),
                    "mean": self._batch_size.mean(),
                    "p50": self._batch_size.percentile(50),
                    "p95": self._batch_size.percentile(95),
                    "p99": self._batch_size.percentile(99),
                },
            }
