"""``repro.serve`` — the concurrent query-serving subsystem.

Turns a built :class:`~repro.core.framework.KSpin` into a long-running
service: a thread-safe :class:`Engine` with a keyword-aware LRU result
cache, a bounded :class:`WorkerPool` that sheds overload instead of
queueing it, and a stdlib HTTP/JSON front end (:class:`QueryServer`)
with a load-generation client (:class:`ServeClient`).

Quick use::

    from repro.persist import load_kspin
    from repro.serve import Engine, QueryServer

    engine = Engine(load_kspin("fl.kspin"), cache_size=4096)
    with QueryServer(engine, port=8080, workers=8).start_background() as server:
        ...  # curl http://127.0.0.1:8080/bknn?vertex=5&k=3&keywords=thai
"""

from repro.serve.admission import DeadlineExceeded, ServerSaturated, WorkerPool
from repro.serve.cache import ResultCache, result_key
from repro.serve.engine import Engine, EngineResult
from repro.serve.http import QueryServer
from repro.serve.loadgen import LoadResult, ServeClient, replay
from repro.serve.locks import ReadWriteLock
from repro.serve.metrics import LatencyRecorder, ServerMetrics

__all__ = [
    "DeadlineExceeded",
    "Engine",
    "EngineResult",
    "LatencyRecorder",
    "LoadResult",
    "QueryServer",
    "ReadWriteLock",
    "ResultCache",
    "ServeClient",
    "ServerMetrics",
    "ServerSaturated",
    "WorkerPool",
    "replay",
    "result_key",
]
