"""``repro.serve`` — the concurrent query-serving subsystem.

Turns a built :class:`~repro.core.framework.KSpin` into a long-running
service: a thread-safe :class:`Engine` with a keyword-aware LRU result
cache, a process-parallel :class:`ClusterCoordinator` that forks workers
after index build (copy-on-write sharing) with placement routing,
scatter-gather merging and supervised restarts, a bounded
:class:`WorkerPool` that sheds overload instead of queueing it, and a
stdlib HTTP/JSON front end (:class:`QueryServer`) with a
load-generation client (:class:`ServeClient`).

Quick use::

    from repro.api import Query
    from repro.persist import load_kspin
    from repro.serve import ClusterCoordinator, Engine, QueryServer

    backend = Engine(load_kspin("fl.kspin"), cache_size=4096)
    # or escape the GIL with processes:
    # backend = ClusterCoordinator(load_kspin("fl.kspin"), num_workers=4)
    with QueryServer(backend, port=8080, workers=8).start_background() as server:
        ...  # curl http://127.0.0.1:8080/v1/bknn?vertex=5&k=3&keywords=thai
"""

from repro.api import (
    BatchResult,
    Hit,
    Query,
    QueryBatch,
    QueryResult,
    UnsupportedQueryError,
    UpdateOp,
    execute_batch,
)
from repro.serve.admission import DeadlineExceeded, ServerSaturated, WorkerPool
from repro.serve.cache import ResultCache, result_key
from repro.serve.cluster import PLACEMENTS, ClusterCoordinator
from repro.serve.engine import Engine, EngineResult
from repro.serve.http import QueryServer
from repro.serve.ipc import WorkerDied, WorkerError, WorkerHandle
from repro.serve.loadgen import LoadResult, ServeClient, replay
from repro.serve.locks import ReadWriteLock
from repro.serve.metrics import LatencyRecorder, ServerMetrics
from repro.serve.placement import KeywordShardRouter, ReplicateRouter, shard_of
from repro.serve.supervisor import Supervisor

__all__ = [
    "PLACEMENTS",
    "BatchResult",
    "ClusterCoordinator",
    "DeadlineExceeded",
    "Engine",
    "EngineResult",
    "Hit",
    "KeywordShardRouter",
    "LatencyRecorder",
    "LoadResult",
    "Query",
    "QueryBatch",
    "QueryResult",
    "QueryServer",
    "ReadWriteLock",
    "ReplicateRouter",
    "ResultCache",
    "ServeClient",
    "ServerMetrics",
    "ServerSaturated",
    "Supervisor",
    "UnsupportedQueryError",
    "UpdateOp",
    "WorkerDied",
    "WorkerError",
    "WorkerHandle",
    "WorkerPool",
    "execute_batch",
    "replay",
    "result_key",
    "shard_of",
]
