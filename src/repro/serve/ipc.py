"""Worker-process plumbing for the serving cluster.

One cluster worker is one OS process running :func:`worker_main` over a
:class:`multiprocessing.connection.Connection` pipe.  The design leans
on two properties of the deployment:

* **Workers are forked after the index is built.**  Under the ``fork``
  start method the child inherits the parent's built ``KSpin`` through
  copy-on-write pages — no serialisation, near-zero startup.  Under
  ``spawn`` (or after a worker death when the parent prefers a clean
  slate) the child instead *rehydrates*: it loads the persisted index
  snapshot and replays the update journal it is handed.
* **The pipe is a strict request/reply channel.**  The parent-side
  :class:`WorkerHandle` serialises access with a mutex so one request's
  reply can never be consumed by another thread's ``recv`` — the
  scatter-gather coordinator achieves parallelism *across* workers,
  never across requests on one worker's pipe.

Failure mapping: a dead worker surfaces as :class:`WorkerDied`
(``EOFError``/``OSError`` on the pipe); a worker-side exception travels
back as an ``("err", (code, message))`` reply and is re-raised as
:class:`WorkerError` carrying the machine-readable code used by the
HTTP envelope.
"""

from __future__ import annotations

import traceback
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from typing import Sequence

from repro.analysis.lockdebug import make_lock
from repro.api import Query, QueryResult, UnsupportedQueryError, UpdateOp
from repro.core.framework import KSpin
from repro.obs.events import EVENTS
from repro.obs.profile import PROFILER
from repro.obs.trace import TRACER


class WorkerDied(RuntimeError):
    """The worker process is gone (pipe closed or process not alive)."""


class WorkerError(RuntimeError):
    """The worker answered with an error reply.

    ``code`` is a machine-readable error code compatible with the HTTP
    envelope (e.g. ``"bad_request"``, ``"internal"``).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class WorkerHandle:
    """Parent-side endpoint for one worker process.

    Wraps the parent end of the pipe plus the process object, and owns
    the request/reply discipline: :meth:`request` is the *only* way
    bytes cross the pipe, and it holds a mutex across the paired
    ``send``/``recv`` so concurrent scatter threads never interleave.
    """

    def __init__(self, name: str, process: BaseProcess, conn: Connection) -> None:
        self.name = name
        self.process = process
        self.conn = conn
        self._lock = make_lock(f"ipc.{name}")
        self.requests = 0
        self.inflight = 0
        self.restarts = 0

    # ------------------------------------------------------------------
    # Request/reply
    # ------------------------------------------------------------------
    def request(self, kind: str, payload: object, timeout: float | None = None) -> object:
        """Send ``(kind, payload)`` and wait for the worker's reply.

        ``timeout`` only makes sense for idempotent probes (pings): an
        abandoned reply would desynchronise the pipe for the next
        caller, so on timeout the worker is declared dead rather than
        retried.
        """
        with self._lock:
            self.inflight += 1
            try:
                try:
                    self.conn.send((kind, payload))
                    # The blocking waits below hold this handle's mutex
                    # by design: the mutex *is* the request/reply pipe
                    # discipline (one outstanding request per worker);
                    # scatter parallelism lives across workers instead.
                    if timeout is not None and not self.conn.poll(timeout):  # ksp: ignore[KSP003]
                        raise WorkerDied(
                            f"worker {self.name} unresponsive after {timeout}s"
                        )
                    status, body = self.conn.recv()  # ksp: ignore[KSP003]
                except (EOFError, OSError, BrokenPipeError) as exc:
                    raise WorkerDied(f"worker {self.name} is gone: {exc}") from exc
                self.requests += 1
            finally:
                self.inflight -= 1
        if status == "err":
            code, message = body
            raise WorkerError(code, message)
        return body

    def is_alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def ping(self, timeout: float = 1.0) -> bool:
        """Liveness probe; False (never an exception) on any failure."""
        try:
            return self.request("ping", None, timeout=timeout) == "pong"
        except (WorkerDied, WorkerError):
            return False

    def close(self) -> None:
        """Ask the worker to exit, then reap it (escalating to kill)."""
        try:
            with self._lock:
                self.conn.send(("stop", None))
        except (EOFError, OSError, BrokenPipeError):
            pass
        if self.process is not None:
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=2.0)
                if self.process.is_alive():  # pragma: no cover - last resort
                    self.process.kill()
                    self.process.join(timeout=2.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


def worker_main(
    conn: Connection,
    name: str,
    kspin: KSpin | None = None,
    cache_size: int = 0,
    snapshot_path: str | None = None,
    journal: Sequence[dict] = (),
) -> None:
    """The worker process's request loop (runs until ``stop`` or EOF).

    Exactly one of ``kspin`` (fork start method: the object rode along
    via copy-on-write) or ``snapshot_path`` (spawn/rehydrate: load the
    persisted index, then replay ``journal`` — the updates applied
    since the snapshot) must be provided.

    Protocol (all messages are ``(kind, payload)`` tuples, replies are
    ``("ok", body)`` or ``("err", (code, message))``):

    ===========  ======================  ==============================
    kind         payload                 ok body
    ===========  ======================  ==============================
    query        ``Query.to_dict()``     ``QueryResult.to_dict()``
    query_batch  ``{"queries": [...]}``  ``{"results": [...]}``
    update       ``UpdateOp.to_dict()``  engine ``apply`` summary dict
    ping         ``None``                ``"pong"``
    metrics      ``None``                ``engine.metrics_snapshot()``
    health       ``None``                ``engine.health()``
    events       ``{"since_seq": int}``  ``{"events": [...], "recorder": ...}``
    profile      ``{"action", "hz"}``    profiler snapshot + folded stacks
    stop         ``None``                ``"bye"`` (then exit)
    ===========  ======================  ==============================

    ``events`` drains this worker's flight-recorder stream (each worker
    re-labels the process-global recorder with its own name right after
    fork/rehydrate, so sequence numbers are per-worker monotonic);
    ``profile`` is the cluster profiler scatter — start/stop/status the
    worker's sampling profiler and return its folded stacks for the
    coordinator to merge.

    ``query_batch`` is the batched hot path: the payload carries every
    sub-query assigned to this worker for one client batch, the worker
    answers them through :meth:`Engine.execute_many` (one cache sweep,
    one read-lock acquisition), and the reply's ``results`` list is
    order-aligned with the request.  One pipe round-trip amortises
    pickling and scheduling over the whole share.
    """
    from repro.serve.engine import Engine  # deferred: keep spawn imports light

    if kspin is None:
        if snapshot_path is None:
            raise ValueError("worker needs a kspin or a snapshot_path")
        from repro.persist import load_kspin

        kspin = load_kspin(snapshot_path)
        for entry in journal:
            kspin.apply(UpdateOp.from_dict(entry))
    # The child owns fresh copies of the process-global observability
    # singletons (fork duplicated them; spawn re-imported them): label
    # them with the worker's name so merged streams attribute correctly,
    # and record how this worker came to life — the flight-recorder
    # line that lets a post-mortem distinguish a COW fork from a
    # snapshot rehydrate.
    EVENTS.configure(source=name)
    EVENTS.reset()  # inherited buffer is the parent's history, not ours
    PROFILER.reset()
    PROFILER.source = name
    EVENTS.emit(
        "worker.start",
        mode="fork" if kspin is not None and snapshot_path is None else "rehydrate",
        journal=len(journal),
    )
    engine = Engine(kspin, cache_size=cache_size)

    while True:
        try:
            kind, payload = conn.recv()
        except (EOFError, OSError):  # parent went away: nothing left to serve
            break
        try:
            if kind == "query":
                # A traced request carries its trace ID alongside the
                # query fields; the worker answers with its own span
                # tree so the coordinator can graft HTTP -> dispatch ->
                # worker -> oracle into one tree.
                trace_id = None
                if isinstance(payload, dict):
                    trace_id = payload.pop("trace_id", None)
                if trace_id:
                    with TRACER.trace(
                        "worker.query", trace_id=trace_id, force=True
                    ) as root:
                        root.worker = name
                        result = engine.execute(Query.from_dict(payload))
                else:
                    root = None
                    result = engine.execute(Query.from_dict(payload))
                body = QueryResult(
                    hits=result.hits,
                    stats=result.stats,
                    cached=result.cached,
                    worker=name,
                ).to_dict()
                if root is not None:
                    body["trace"] = root.to_dict()
                reply = ("ok", body)
            elif kind == "query_batch":
                trace_id = None
                if isinstance(payload, dict):
                    trace_id = payload.get("trace_id")
                    raw_queries = payload.get("queries", [])
                else:
                    raw_queries = []
                queries = [Query.from_dict(item) for item in raw_queries]
                if trace_id:
                    with TRACER.trace(
                        "worker.query", trace_id=trace_id, force=True
                    ) as root:
                        root.worker = name
                        root.annotate(batch=len(queries))
                        answers = engine.execute_many(queries)
                else:
                    root = None
                    answers = engine.execute_many(queries)
                body = {
                    "results": [
                        QueryResult(
                            hits=answer.hits,
                            stats=answer.stats,
                            cached=answer.cached,
                            worker=name,
                        ).to_dict()
                        for answer in answers
                    ]
                }
                if root is not None:
                    body["trace"] = root.to_dict()
                reply = ("ok", body)
            elif kind == "update":
                reply = ("ok", engine.apply(UpdateOp.from_dict(payload)))
            elif kind == "ping":
                reply = ("ok", "pong")
            elif kind == "metrics":
                reply = ("ok", engine.metrics_snapshot())
            elif kind == "health":
                reply = ("ok", {**engine.health(), "worker": name})
            elif kind == "events":
                since_seq = 0
                if isinstance(payload, dict):
                    since_seq = int(payload.get("since_seq", 0))
                reply = ("ok", {
                    "events": EVENTS.events(since_seq=since_seq),
                    "recorder": EVENTS.snapshot(),
                })
            elif kind == "profile":
                action = "status"
                hz = None
                if isinstance(payload, dict):
                    action = str(payload.get("action", "status"))
                    hz = payload.get("hz")
                if action == "start":
                    PROFILER.start(hz=hz)
                elif action == "stop":
                    PROFILER.stop()
                elif action == "reset":
                    PROFILER.reset()
                reply = ("ok", {
                    "snapshot": PROFILER.snapshot(),
                    "folded": PROFILER.folded(),
                })
            elif kind == "stop":
                # The shutdown counterpart of worker.start: a merged
                # event stream distinguishes an orderly stop from a
                # death the supervisor had to clean up after.
                EVENTS.emit("worker.stop", worker=name)
                conn.send(("ok", "bye"))
                break
            else:
                reply = ("err", ("bad_request", f"unknown message kind {kind!r}"))
        except UnsupportedQueryError as exc:
            reply = ("err", ("bad_request", str(exc)))
        except (KeyError, ValueError) as exc:
            reply = ("err", ("bad_request", str(exc)))
        except Exception:  # noqa: BLE001 - report, keep serving
            reply = ("err", ("internal", traceback.format_exc(limit=8)))
        try:
            conn.send(reply)
        except (EOFError, OSError, BrokenPipeError):  # pragma: no cover
            break
    conn.close()
