"""Placement policies: which worker(s) answer which query.

Every worker holds the *complete* index (workers are forked from one
built parent), so placement is a routing/cache-affinity decision, never
a correctness one — any worker can answer any query.  Two policies:

``replicate``
    Queries go to any worker (least-loaded, round-robin tie-break).
    Maximises throughput for uniform workloads; each worker's result
    cache independently converges to the global hot set.

``shard-by-keyword``
    Keywords hash (stable CRC-32, not the randomised builtin ``hash``)
    onto shards.  A query whose keywords live on one shard routes
    there — that shard's cache then owns those keywords exclusively,
    so N workers cache N disjoint hot sets instead of N copies of one.
    Multi-shard queries:

    * **conjunctive BkNN / top-k** route whole to the owner of the
      *rarest* keyword (fewest live objects — K-SPIN's conjunctive
      algorithm iterates the rarest inverted heap first, so that
      shard's cache affinity matters most).  Safe precisely because
      sharding is routing, not data partitioning.
    * **disjunctive BkNN** scatters: each owning shard answers the
      sub-query over its own keyword subset, and the coordinator
      merges per-keyword kNN lists — the disjunctive result is the
      k best of the union, which distributes over keyword subsets.
"""

from __future__ import annotations

import itertools
import zlib
from typing import Callable
from dataclasses import dataclass, field

from repro.analysis.lockdebug import make_lock
from repro.api import Query


def shard_of(keyword: str, num_shards: int) -> int:
    """The stable shard index owning ``keyword``.

    CRC-32 rather than ``hash()``: Python randomises string hashes per
    process, and the parent router and any rehydrated worker must agree
    on ownership across process generations.
    """
    return zlib.crc32(keyword.encode("utf-8")) % num_shards


@dataclass(frozen=True)
class RoutingPlan:
    """Where one query goes: one target, or a scatter set with sub-queries.

    ``assignments`` maps worker index -> the (sub-)query that worker
    runs.  ``scatter`` is True when results need a merge.
    """

    assignments: dict[int, Query] = field(default_factory=dict)
    scatter: bool = False

    @property
    def single_target(self) -> int:
        (index,) = self.assignments.keys()
        return index


class ReplicateRouter:
    """Any worker can serve any query; pick the least-loaded one.

    Load is the caller-maintained in-flight count per worker; ties are
    broken round-robin so an idle cluster still spreads requests.
    """

    name = "replicate"

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self._counter = itertools.count()
        self._lock = make_lock("placement.replicate")

    def plan(self, query: Query, inflight: list[int]) -> RoutingPlan:
        with self._lock:
            turn = next(self._counter)
        order = [(inflight[i], (i - turn) % self.num_workers, i)
                 for i in range(self.num_workers)]
        target = min(order)[2]
        return RoutingPlan(assignments={target: query})


class KeywordShardRouter:
    """Keyword-hash placement with scatter-gather for disjunctive BkNN."""

    name = "shard-by-keyword"

    def __init__(
        self,
        num_workers: int,
        inverted_size: Callable[[str], int] | None = None,
    ) -> None:
        """``inverted_size(keyword) -> int`` ranks keyword rarity for the
        conjunctive/top-k single-owner rule; defaults to treating all
        keywords as equally rare (first-owner order)."""
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self._inverted_size = inverted_size or (lambda keyword: 0)

    def plan(self, query: Query, inflight: list[int]) -> RoutingPlan:
        by_shard: dict[int, list[str]] = {}
        for keyword in query.keywords:
            by_shard.setdefault(
                shard_of(keyword, self.num_workers), []
            ).append(keyword)
        if len(by_shard) == 1:
            (target,) = by_shard.keys()
            return RoutingPlan(assignments={target: query})
        if query.kind == "topk" or query.conjunctive:
            # Whole query to the rarest keyword's owner: conjunctive
            # results need every keyword's diagram anyway (each worker
            # has them all), and the rarest inverted heap drives the
            # search, so pin its cache locality.
            rarest = min(
                query.keywords,
                key=lambda kw: (self._inverted_size(kw), kw),
            )
            target = shard_of(rarest, self.num_workers)
            return RoutingPlan(assignments={target: query})
        # Disjunctive BkNN distributes over keyword subsets: each shard
        # answers k-best among its own keywords, the coordinator merges.
        assignments = {
            shard: Query(
                vertex=query.vertex,
                keywords=tuple(keywords),
                k=query.k,
                kind=query.kind,
                mode=query.mode,
            )
            for shard, keywords in by_shard.items()
        }
        return RoutingPlan(assignments=assignments, scatter=True)
