"""Placement policies: which worker(s) answer which query.

Every worker holds the *complete* index (workers are forked from one
built parent), so placement is a routing/cache-affinity decision, never
a correctness one — any worker can answer any query.  Two policies:

``replicate``
    Queries go to any worker (least-loaded, round-robin tie-break).
    Maximises throughput for uniform workloads; each worker's result
    cache independently converges to the global hot set.

``shard-by-keyword``
    Keywords hash (stable CRC-32, not the randomised builtin ``hash``)
    onto shards.  A query whose keywords live on one shard routes
    there — that shard's cache then owns those keywords exclusively,
    so N workers cache N disjoint hot sets instead of N copies of one.
    Multi-shard queries:

    * **conjunctive BkNN / top-k** route whole to the owner of the
      *rarest* keyword (fewest live objects — K-SPIN's conjunctive
      algorithm iterates the rarest inverted heap first, so that
      shard's cache affinity matters most).  Safe precisely because
      sharding is routing, not data partitioning.
    * **disjunctive BkNN** scatters: each owning shard answers the
      sub-query over its own keyword subset, and the coordinator
      merges per-keyword kNN lists — the disjunctive result is the
      k best of the union, which distributes over keyword subsets.

Sketch-aware pruning
--------------------
Both routers optionally consult an
:class:`~repro.sketch.registry.IndexSketches` registry.  A Bloom
rejection is a *proof* the keyword has no live objects (no false
negatives), so the router may:

* short-circuit the whole query to a provably-empty plan
  (``RoutingPlan.empty``) — any rejected keyword kills a conjunctive
  query; all keywords rejected kills any query;
* drop rejected keywords from a disjunctive scatter, skipping every
  shard that owned only rejected keywords (``RoutingPlan.skipped``
  records them for the fan-out counters).

False positives only dispatch sub-queries that come back empty, so
recall is provably unchanged; a saturated filter fails open inside
``may_contain`` (full fan-out) rather than over-trusting stale bits.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable
from dataclasses import dataclass, field

from repro.analysis.lockdebug import make_lock
from repro.api import Query
from repro.sketch.ring import stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sketch.registry import IndexSketches


def shard_of(keyword: str, num_shards: int) -> int:
    """The stable shard index owning ``keyword``.

    CRC-32 (:func:`repro.sketch.ring.stable_hash`) rather than
    ``hash()``: Python randomises string hashes per process, and the
    parent router and any rehydrated worker must agree on ownership
    across process generations.  Bit-compatible with
    :meth:`repro.sketch.registry.IndexSketches.shard_of`.
    """
    return stable_hash(keyword) % num_shards


@dataclass(frozen=True)
class RoutingPlan:
    """Where one query goes: one target, or a scatter set with sub-queries.

    ``assignments`` maps worker index -> the (sub-)query that worker
    runs.  ``scatter`` is True when results need a merge.  ``empty``
    marks a sketch short-circuit: the plan proves the answer is empty
    and nothing is dispatched.  ``skipped`` lists shards a full
    scatter-gather would have dispatched to but the sketches ruled out.
    """

    assignments: dict[int, Query] = field(default_factory=dict)
    scatter: bool = False
    empty: bool = False
    skipped: tuple[int, ...] = ()

    @property
    def single_target(self) -> int:
        (index,) = self.assignments.keys()
        return index


def _rejected_keywords(
    query: Query, sketches: "IndexSketches | None"
) -> set[str]:
    """Query keywords the sketches *prove* have no live objects."""
    if sketches is None:
        return set()
    return {kw for kw in query.keywords if not sketches.may_contain(kw)}


def _short_circuits(query: Query, rejected: set[str]) -> bool:
    """Whether the rejection set proves the whole answer is empty.

    Conjunctive queries need every keyword, so one dead keyword is
    fatal; disjunctive/top-k queries are empty only when *no* keyword
    has objects.
    """
    if not rejected:
        return False
    if query.conjunctive:
        return True
    return len(rejected) == len(query.keywords)


class ReplicateRouter:
    """Any worker can serve any query; pick the least-loaded one.

    Load is the caller-maintained in-flight count per worker; ties are
    broken round-robin so an idle cluster still spreads requests.
    """

    name = "replicate"

    def __init__(
        self,
        num_workers: int,
        sketches: "IndexSketches | None" = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self.sketches = sketches
        self._counter = itertools.count()
        self._lock = make_lock("placement.replicate")

    def plan(self, query: Query, inflight: list[int]) -> RoutingPlan:
        rejected = _rejected_keywords(query, self.sketches)
        if _short_circuits(query, rejected):
            return RoutingPlan(empty=True)
        with self._lock:
            turn = next(self._counter)
        order = [(inflight[i], (i - turn) % self.num_workers, i)
                 for i in range(self.num_workers)]
        target = min(order)[2]
        return RoutingPlan(assignments={target: query})


class KeywordShardRouter:
    """Keyword-hash placement with scatter-gather for disjunctive BkNN."""

    name = "shard-by-keyword"

    def __init__(
        self,
        num_workers: int,
        inverted_size: Callable[[str], int] | None = None,
        sketches: "IndexSketches | None" = None,
    ) -> None:
        """``inverted_size(keyword) -> int`` ranks keyword rarity for the
        conjunctive/top-k single-owner rule; defaults to treating all
        keywords as equally rare (first-owner order).  ``sketches``
        enables Bloom-backed keyword pruning and shard skipping."""
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self.sketches = sketches
        self._inverted_size = inverted_size or (lambda keyword: 0)

    def plan(self, query: Query, inflight: list[int]) -> RoutingPlan:
        rejected = _rejected_keywords(query, self.sketches)
        if _short_circuits(query, rejected):
            return RoutingPlan(empty=True)
        live = [kw for kw in query.keywords if kw not in rejected]
        shards_all = {
            shard_of(keyword, self.num_workers) for keyword in query.keywords
        }
        by_shard: dict[int, list[str]] = {}
        for keyword in live:
            by_shard.setdefault(
                shard_of(keyword, self.num_workers), []
            ).append(keyword)
        skipped = tuple(sorted(shards_all - set(by_shard)))
        if query.kind == "topk" or query.conjunctive:
            # Whole query to the rarest *live* keyword's owner:
            # conjunctive results need every keyword's diagram anyway
            # (each worker has them all), and the rarest inverted heap
            # drives the search, so pin its cache locality.  The query
            # is never narrowed here — top-k relevance normalisation
            # spans the full keyword vector.
            rarest = min(
                live, key=lambda kw: (self._inverted_size(kw), kw),
            )
            target = shard_of(rarest, self.num_workers)
            return RoutingPlan(assignments={target: query})
        if len(by_shard) == 1:
            # One live shard: route the narrowed query there.  Dropping
            # Bloom-rejected keywords is result-identical (a proven-dead
            # keyword contributes no candidates) and skips dead-keyword
            # heap setup on the worker.
            (target,) = by_shard.keys()
            narrowed = query if len(live) == len(query.keywords) else Query(
                vertex=query.vertex,
                keywords=tuple(live),
                k=query.k,
                kind=query.kind,
                mode=query.mode,
            )
            return RoutingPlan(
                assignments={target: narrowed}, skipped=skipped
            )
        # Disjunctive BkNN distributes over keyword subsets: each shard
        # answers k-best among its own live keywords, the coordinator
        # merges; shards owning only rejected keywords are skipped.
        assignments = {
            shard: Query(
                vertex=query.vertex,
                keywords=tuple(keywords),
                k=query.k,
                kind=query.kind,
                mode=query.mode,
            )
            for shard, keywords in by_shard.items()
        }
        return RoutingPlan(
            assignments=assignments, scatter=True, skipped=skipped
        )
