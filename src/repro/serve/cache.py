"""Bounded LRU result cache with per-keyword invalidation.

Serving workloads are Zipf-skewed (the same popular keyword vectors and
query vertices repeat), so a small result cache absorbs a large share of
traffic.  Correctness over a mutable index requires *invalidation*:
every cached entry records the keywords it depends on, and an update
touching keyword ``t`` evicts exactly the entries whose keyword set
contains ``t`` — other keywords' entries survive, mirroring K-SPIN's
keyword-separated design where an update to ``inv(t)`` cannot change
any query that never reads ``t``'s diagram.

Thread safety: every public method takes the internal mutex, so the
cache can be shared by all worker threads.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable

from repro.analysis.lockdebug import make_lock

#: Cache keys are ``(vertex, frozenset(keywords), k, kind, mode)``.
CacheKey = tuple[int, frozenset[str], int, str, Hashable]


def result_key(
    vertex: int,
    keywords: Iterable[str],
    k: int,
    kind: str,
    mode: Hashable = None,
) -> CacheKey:
    """Canonical cache key for one query.

    ``kind`` is the query family (``"bknn"`` / ``"topk"``); ``mode``
    carries family-specific knobs (e.g. ``conjunctive`` for BkNN) so
    variants never alias each other.
    """
    return (vertex, frozenset(keywords), k, kind, mode)


class ResultCache:
    """Thread-safe bounded LRU over query results.

    Parameters
    ----------
    capacity:
        Maximum number of cached entries; 0 disables caching entirely
        (every ``get`` misses, every ``put`` is dropped).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._lock = make_lock("cache")
        self._entries: OrderedDict[CacheKey, list[tuple[int, float]]] = OrderedDict()
        # keyword -> keys of live entries that read that keyword's diagram.
        self._by_keyword: dict[str, set[CacheKey]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> list[tuple[int, float]] | None:
        """The cached result for ``key``, refreshing LRU order; else None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: CacheKey, results: list[tuple[int, float]]) -> None:
        """Store one result, evicting the least recently used on overflow."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = results
                return
            while len(self._entries) >= self.capacity:
                old_key, _ = self._entries.popitem(last=False)
                self._unindex(old_key)
            self._entries[key] = results
            for keyword in key[1]:
                self._by_keyword.setdefault(keyword, set()).add(key)

    def _unindex(self, key: CacheKey) -> None:  # ksp: holds[self._lock]
        for keyword in key[1]:
            keys = self._by_keyword.get(keyword)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_keyword[keyword]

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_keywords(self, keywords: Iterable[str]) -> int:
        """Evict every entry whose keyword set meets ``keywords``.

        Returns the number of entries evicted.  This is the hook wired
        to index updates: inserting/deleting an object with document
        ``doc`` calls ``invalidate_keywords(doc)``.
        """
        evicted = 0
        with self._lock:
            stale: set[CacheKey] = set()
            for keyword in keywords:
                stale.update(self._by_keyword.get(keyword, ()))
            for key in stale:
                if key in self._entries:
                    del self._entries[key]
                    self._unindex(key)
                    evicted += 1
            self.invalidations += evicted
        return evicted

    def invalidate_all(self) -> int:
        """Drop everything (used for wholesale rebuilds)."""
        with self._lock:
            evicted = len(self._entries)
            self._entries.clear()
            self._by_keyword.clear()
            self.invalidations += evicted
        return evicted

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def hit_rate(self) -> float:
        """Hits over lookups so far (0.0 before any lookup)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """Counters for the ``/metrics`` endpoint."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "hit_rate": self.hits / total if total else 0.0,
            }
