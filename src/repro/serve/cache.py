"""Bounded LRU result cache with per-keyword invalidation.

Serving workloads are Zipf-skewed (the same popular keyword vectors and
query vertices repeat), so a small result cache absorbs a large share of
traffic.  Correctness over a mutable index requires *invalidation*:
every cached entry records the keywords it depends on, and an update
touching keyword ``t`` evicts exactly the entries whose keyword set
contains ``t`` — other keywords' entries survive, mirroring K-SPIN's
keyword-separated design where an update to ``inv(t)`` cannot change
any query that never reads ``t``'s diagram.

Admission is a separate policy object (:class:`HotKeywordAdmission`):
once the cache is full, every ``put`` displaces a resident entry, so a
slot should only go to a keyword vector the lossy counter has seen
enough traffic for — one-off scans stop churning the hot set out.
While the cache has spare capacity everything is admitted (an empty
slot costs nothing), so lightly-loaded servers behave exactly as
before.

Thread safety: every public method takes the internal mutex, so the
cache can be shared by all worker threads.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterable

from repro.analysis.lockdebug import make_lock
from repro.obs.events import EVENTS
from repro.sketch.lossy import LossyCounter

#: Cache keys are ``(vertex, frozenset(keywords), k, kind, mode)``.
CacheKey = tuple[int, frozenset[str], int, str, Hashable]


def result_key(
    vertex: int,
    keywords: Iterable[str],
    k: int,
    kind: str,
    mode: Hashable = None,
) -> CacheKey:
    """Canonical cache key for one query.

    ``kind`` is the query family (``"bknn"`` / ``"topk"``); ``mode``
    carries family-specific knobs (e.g. ``conjunctive`` for BkNN) so
    variants never alias each other.
    """
    return (vertex, frozenset(keywords), k, kind, mode)


class ResultCache:
    """Thread-safe bounded LRU over query results.

    Parameters
    ----------
    capacity:
        Maximum number of cached entries; 0 disables caching entirely
        (every ``get`` misses, every ``put`` is dropped).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._lock = make_lock("cache")
        self._entries: OrderedDict[CacheKey, list[tuple[int, float]]] = OrderedDict()
        # keyword -> keys of live entries that read that keyword's diagram.
        self._by_keyword: dict[str, set[CacheKey]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def full(self) -> bool:
        """Whether the next ``put`` of a new key must evict a resident."""
        with self._lock:
            return self.capacity > 0 and len(self._entries) >= self.capacity

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> list[tuple[int, float]] | None:
        """The cached result for ``key``, refreshing LRU order; else None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def get_many(
        self, keys: Iterable[CacheKey]
    ) -> list[list[tuple[int, float]] | None]:
        """One-lock lookup sweep for a whole batch, order-preserving.

        Equivalent to ``[self.get(k) for k in keys]`` but takes the
        mutex once, so a batch of N queries costs one lock acquisition
        instead of N on the serving hot path.  Hit/miss counters and
        LRU order advance exactly as the sequential form would.
        """
        out: list[list[tuple[int, float]] | None] = []
        with self._lock:
            for key in keys:
                entry = self._entries.get(key)
                if entry is None:
                    self.misses += 1
                    out.append(None)
                else:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    out.append(entry)
        return out

    def put(self, key: CacheKey, results: list[tuple[int, float]]) -> None:
        """Store one result, evicting the least recently used on overflow."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = results
                return
            while len(self._entries) >= self.capacity:
                old_key, _ = self._entries.popitem(last=False)
                self._unindex(old_key)
            self._entries[key] = results
            for keyword in key[1]:
                self._by_keyword.setdefault(keyword, set()).add(key)

    def _unindex(self, key: CacheKey) -> None:  # ksp: holds[self._lock]
        for keyword in key[1]:
            keys = self._by_keyword.get(keyword)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_keyword[keyword]

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_keywords(self, keywords: Iterable[str]) -> int:
        """Evict every entry whose keyword set meets ``keywords``.

        Returns the number of entries evicted.  This is the hook wired
        to index updates: inserting/deleting an object with document
        ``doc`` calls ``invalidate_keywords(doc)``.
        """
        evicted = 0
        with self._lock:
            stale: set[CacheKey] = set()
            for keyword in keywords:
                stale.update(self._by_keyword.get(keyword, ()))
            for key in stale:
                if key in self._entries:
                    del self._entries[key]
                    self._unindex(key)
                    evicted += 1
            self.invalidations += evicted
        if evicted:
            # Outside the cache mutex: the recorder has its own lock and
            # an eviction storm must not serialise behind event writes.
            EVENTS.emit("cache.evict", entries=evicted)
        return evicted

    def invalidate_all(self) -> int:
        """Drop everything (used for wholesale rebuilds)."""
        with self._lock:
            evicted = len(self._entries)
            self._entries.clear()
            self._by_keyword.clear()
            self.invalidations += evicted
        return evicted

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def hit_rate(self) -> float:
        """Hits over lookups so far (0.0 before any lookup)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """Counters for the ``/metrics`` endpoint."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "hit_rate": self.hits / total if total else 0.0,
            }


class HotKeywordAdmission:
    """Lossy-counter gate deciding which results deserve an LRU slot.

    Every executed query ``observe``\\ s its keywords; ``admit`` is
    consulted at ``put`` time and answers *yes* when the cache still has
    spare capacity (an empty slot is free) or when any of the query's
    keywords is hot — tracked by the counter with at least
    ``hot_threshold`` observations.  Under Zipf traffic the hot set
    stays tracked (lossy counting never drops an item above its support
    bound), while one-off keyword vectors are pruned and stop evicting
    popular entries.

    Index updates do **not** touch heat: heat measures query traffic,
    not index contents, so an ``UpdateOp`` invalidating a hot keyword's
    cached results leaves its admission priority intact — the next
    query re-fills the slot.

    Thread safety: one mutex around the counter, same discipline as the
    cache itself.
    """

    def __init__(
        self, epsilon: float = 0.001, hot_threshold: int = 2
    ) -> None:
        if hot_threshold < 1:
            raise ValueError("hot_threshold must be positive")
        self.hot_threshold = hot_threshold
        self._lock = make_lock("cache.admission")
        self._heat = LossyCounter(epsilon=epsilon)
        self.admitted = 0
        self.rejected = 0

    def observe(self, keywords: Iterable[str]) -> None:
        """Record one query's keyword traffic."""
        with self._lock:
            for keyword in keywords:
                self._heat.add(keyword)

    def observe_many(self, keyword_vectors: Iterable[Iterable[str]]) -> None:
        """Record a whole batch's keyword traffic under one lock."""
        with self._lock:
            for keywords in keyword_vectors:
                for keyword in keywords:
                    self._heat.add(keyword)

    def heat(self, keyword: str) -> int:
        """The keyword's tracked observation count (0 if cold/pruned)."""
        with self._lock:
            return self._heat.estimate(keyword)

    def is_hot(self, keywords: Iterable[str]) -> bool:
        """Whether any keyword has reached ``hot_threshold`` heat."""
        with self._lock:
            return any(
                self._heat.estimate(keyword) >= self.hot_threshold
                for keyword in keywords
            )

    def admit(self, keywords: Iterable[str], under_pressure: bool) -> bool:
        """Should this result occupy a slot?

        ``under_pressure`` is :meth:`ResultCache.full` — only a full
        cache pays an eviction per admission, so only then does the
        gate bite.
        """
        decision = not under_pressure or self.is_hot(keywords)
        with self._lock:
            if decision:
                self.admitted += 1
            else:
                self.rejected += 1
        if not decision:
            EVENTS.emit("cache.admit_rejected")
        return decision

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The hottest keywords (``repro sketch`` CLI / metrics)."""
        with self._lock:
            return self._heat.top(n)

    def snapshot(self) -> dict[str, Any]:
        """Counters plus the serialized heat counter.

        The raw ``counter`` payload rides along so the cluster
        coordinator can merge per-worker heat exactly (lossy-counter
        merge keeps the error bound over the pooled stream).
        """
        with self._lock:
            return {
                "hot_threshold": self.hot_threshold,
                "observed": self._heat.observed,
                "tracked": len(self._heat),
                "admitted": self.admitted,
                "rejected": self.rejected,
                "top": self._heat.top(10),
                "counter": self._heat.to_dict(),
            }
