"""A readers-writer lock for the serving engine.

K-SPIN's query path is read-mostly: concurrent queries touch disjoint
per-keyword heaps and never mutate the index, while updates (§6.2)
mutate per-keyword diagrams (tombstones, co-location sets, adjacency).
Under CPython's GIL individual dict/set operations are atomic, but a
query *iterating* an adjacency set while an update mutates it raises
``RuntimeError: set changed size during iteration`` — so the engine
takes this lock in read mode around queries and in write mode around
updates.

Writer-preferring: once a writer is waiting, new readers queue behind
it, so a steady query stream cannot starve updates.  Two hardening
guarantees on top of the classic discipline:

* **Reader re-entry is safe.**  A thread already holding the read lock
  may re-acquire it even while a writer waits (per-thread hold counts);
  without this, reader re-entry under a waiting writer deadlocks — the
  re-entering reader queues behind the writer, which waits for that
  same reader to drain.
* **Unbalanced releases raise.**  ``release_read`` without a matching
  ``acquire_read`` (or ``release_write`` by a thread that is not the
  active writer) raises ``RuntimeError`` instead of silently corrupting
  the reader count.

In ``REPRO_LOCK_DEBUG=1`` mode every acquisition/release reports to the
global lock-order graph (:mod:`repro.analysis.lockdebug`), so inverted
acquisition orders across the serving stack surface as cycle reports
instead of rare production deadlocks.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.analysis import lockdebug


class ReadWriteLock:
    """Many concurrent readers, exclusive writers, writer-preferring."""

    def __init__(self, name: str | None = None) -> None:
        self._mutex = threading.Lock()
        self._readers_done = threading.Condition(self._mutex)
        self._writer_done = threading.Condition(self._mutex)
        self._active_readers = 0
        self._writer_active = False
        self._writer_thread: int | None = None
        self._writers_waiting = 0
        self._local = threading.local()
        self.name = name or f"rwlock@{id(self):x}"
        # Snapshot at construction: instrumentation is opt-in *before*
        # engines are built, so the hot path never re-checks the flag.
        self._debug = lockdebug.enabled()

    def _read_count(self) -> int:
        return getattr(self._local, "read_count", 0)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        held = self._read_count()
        if held:
            # Re-entrant read: this thread already counts among the
            # active readers, so no writer can be active — waiting on
            # the writer queue here would deadlock against a writer
            # that waits for *this* reader to drain.
            with self._mutex:
                self._active_readers += 1
            self._local.read_count = held + 1
            return
        with self._mutex:
            while self._writer_active or self._writers_waiting:
                self._writer_done.wait()
            self._active_readers += 1
        self._local.read_count = 1
        if self._debug:
            lockdebug.note_acquire(self, f"{self.name}:read")

    def release_read(self) -> None:
        held = self._read_count()
        if held <= 0:
            raise RuntimeError(
                f"release_read on {self.name!r} without a matching "
                "acquire_read in this thread"
            )
        self._local.read_count = held - 1
        with self._mutex:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._readers_done.notify_all()
        if self._debug and held == 1:
            lockdebug.note_release(self)

    @contextmanager
    def read(self) -> Iterator[None]:
        """``with lock.read():`` — shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        with self._mutex:
            if self._writer_active and self._writer_thread == threading.get_ident():
                raise RuntimeError(
                    f"write side of {self.name!r} is not re-entrant"
                )
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._readers_done.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            self._writer_thread = threading.get_ident()
        if self._debug:
            lockdebug.note_acquire(self, f"{self.name}:write")

    def release_write(self) -> None:
        with self._mutex:
            if not self._writer_active:
                raise RuntimeError(
                    f"release_write on {self.name!r} without an active writer"
                )
            if self._writer_thread != threading.get_ident():
                raise RuntimeError(
                    f"release_write on {self.name!r} from a thread that is "
                    "not the active writer"
                )
            self._writer_active = False
            self._writer_thread = None
            self._readers_done.notify_all()
            self._writer_done.notify_all()
        if self._debug:
            lockdebug.note_release(self)

    @contextmanager
    def write(self) -> Iterator[None]:
        """``with lock.write():`` — exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
