"""A readers-writer lock for the serving engine.

K-SPIN's query path is read-mostly: concurrent queries touch disjoint
per-keyword heaps and never mutate the index, while updates (§6.2)
mutate per-keyword diagrams (tombstones, co-location sets, adjacency).
Under CPython's GIL individual dict/set operations are atomic, but a
query *iterating* an adjacency set while an update mutates it raises
``RuntimeError: set changed size during iteration`` — so the engine
takes this lock in read mode around queries and in write mode around
updates.

Writer-preferring: once a writer is waiting, new readers queue behind
it, so a steady query stream cannot starve updates.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """Many concurrent readers, exclusive writers, writer-preferring."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._readers_done = threading.Condition(self._mutex)
        self._writer_done = threading.Condition(self._mutex)
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        with self._mutex:
            while self._writer_active or self._writers_waiting:
                self._writer_done.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._mutex:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._readers_done.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        """``with lock.read():`` — shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        with self._mutex:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._readers_done.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._mutex:
            self._writer_active = False
            self._readers_done.notify_all()
            self._writer_done.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """``with lock.write():`` — exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
