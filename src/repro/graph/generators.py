"""Synthetic road-network generators.

The paper evaluates on five DIMACS road graphs (DE, ME, FL, E, US;
48k - 24M vertices).  Those inputs are not shipped here, and pure Python
cannot process 24M-vertex graphs at benchmark rates, so we generate
*structurally faithful* stand-ins: planar, low-degree, locally connected
networks with perturbed geometry and travel-time-like weights.  Real road
networks are near-planar with average degree ~2.4-2.8; the perturbed-grid
generator reproduces both properties.

Generators are deterministic given a seed, so every experiment in
``benchmarks/`` is reproducible.
"""

from __future__ import annotations

import math
import random

from repro.graph.road_network import RoadNetwork


def perturbed_grid_network(
    rows: int,
    cols: int,
    seed: int = 0,
    drop_fraction: float = 0.1,
    diagonal_fraction: float = 0.05,
    coordinate_jitter: float = 0.3,
    weight_jitter: float = 0.5,
) -> RoadNetwork:
    """A road-network-like perturbed grid.

    Starts from a ``rows x cols`` lattice, jitters coordinates, drops a
    fraction of edges (dead ends, rivers), and adds a few diagonal
    shortcuts (highways).  Edge weights are Euclidean lengths scaled by a
    random factor in ``[1, 1 + weight_jitter]``, mimicking heterogeneous
    speeds.  Connectivity is restored after edge drops, so the result is
    always a single component.

    Parameters
    ----------
    rows, cols:
        Lattice dimensions; the network has ``rows * cols`` vertices.
    seed:
        RNG seed; identical seeds produce identical networks.
    drop_fraction:
        Fraction of lattice edges removed at random.
    diagonal_fraction:
        Fraction of lattice cells that receive one diagonal shortcut.
    coordinate_jitter:
        Max absolute jitter applied to each unit-grid coordinate.
    weight_jitter:
        Max relative increase of an edge weight over its length.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid must be at least 2x2")
    rng = random.Random(seed)
    n = rows * cols
    graph = RoadNetwork(n)

    def vertex(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            x = c + rng.uniform(-coordinate_jitter, coordinate_jitter)
            y = r + rng.uniform(-coordinate_jitter, coordinate_jitter)
            graph.set_coordinates(vertex(r, c), x, y)

    candidate_edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                candidate_edges.append((vertex(r, c), vertex(r, c + 1)))
            if r + 1 < rows:
                candidate_edges.append((vertex(r, c), vertex(r + 1, c)))

    kept = [e for e in candidate_edges if rng.random() >= drop_fraction]
    for u, v in kept:
        graph.add_edge(u, v, _edge_length(graph, u, v, rng, weight_jitter))

    for r in range(rows - 1):
        for c in range(cols - 1):
            if rng.random() < diagonal_fraction:
                u, v = vertex(r, c), vertex(r + 1, c + 1)
                graph.add_edge(u, v, _edge_length(graph, u, v, rng, weight_jitter))

    _restore_connectivity(graph, candidate_edges, rng, weight_jitter)
    return graph


def random_geometric_network(
    num_vertices: int,
    seed: int = 0,
    average_degree: float = 2.6,
    weight_jitter: float = 0.5,
) -> RoadNetwork:
    """A random geometric graph wired like a sparse road network.

    Vertices are uniform in the unit square; each vertex connects to its
    nearest unlinked neighbors until the target average degree is met.
    A spanning pass guarantees connectivity.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = random.Random(seed)
    graph = RoadNetwork(num_vertices)
    points = [(rng.random(), rng.random()) for _ in range(num_vertices)]
    for v, (x, y) in enumerate(points):
        graph.set_coordinates(v, x, y)

    # Bucket the square so nearest-neighbor search is near-linear.
    buckets: dict[tuple[int, int], list[int]] = {}
    cell = max(1e-9, 1.0 / max(1, int(math.sqrt(num_vertices))))
    for v, (x, y) in enumerate(points):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(v)

    target_edges = int(num_vertices * average_degree / 2)
    links_per_vertex = max(1, round(average_degree / 2))
    for u in range(num_vertices):
        ux, uy = points[u]
        bx, by = int(ux / cell), int(uy / cell)
        nearby = [
            w
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for w in buckets.get((bx + dx, by + dy), ())
            if w != u
        ]
        nearby.sort(key=lambda w: _squared_distance(points[u], points[w]))
        for w in nearby[:links_per_vertex]:
            if graph.num_edges >= target_edges:
                break
            graph.add_edge(u, w, _edge_length(graph, u, w, rng, weight_jitter))

    _connect_components_geometrically(graph, rng, weight_jitter)
    return graph


def _edge_length(
    graph: RoadNetwork, u: int, v: int, rng: random.Random, weight_jitter: float
) -> float:
    (ux, uy), (vx, vy) = graph.coordinates(u), graph.coordinates(v)
    length = math.hypot(ux - vx, uy - vy)
    return max(1e-6, length) * (1.0 + rng.uniform(0.0, weight_jitter))


def _squared_distance(p: tuple[float, float], q: tuple[float, float]) -> float:
    return (p[0] - q[0]) ** 2 + (p[1] - q[1]) ** 2


def _restore_connectivity(
    graph: RoadNetwork,
    candidate_edges: list[tuple[int, int]],
    rng: random.Random,
    weight_jitter: float,
) -> None:
    """Re-add dropped lattice edges until the graph is one component."""
    component = graph.component_of(0)
    while len(component) < graph.num_vertices:
        crossing = [
            (u, v)
            for u, v in candidate_edges
            if (u in component) != (v in component)
        ]
        if not crossing:  # pragma: no cover - lattice always has crossings
            break
        u, v = rng.choice(crossing)
        graph.add_edge(u, v, _edge_length(graph, u, v, rng, weight_jitter))
        component = graph.component_of(0)


def _connect_components_geometrically(
    graph: RoadNetwork, rng: random.Random, weight_jitter: float
) -> None:
    """Stitch disconnected components with their geometrically closest pair."""
    main = graph.component_of(0)
    while len(main) < graph.num_vertices:
        outside = next(v for v in graph.vertices() if v not in main)
        island = graph.component_of(outside)
        best: tuple[float, int, int] | None = None
        sample_main = rng.sample(sorted(main), min(len(main), 200))
        for u in island:
            for w in sample_main:
                d = _squared_distance(graph.coordinates(u), graph.coordinates(w))
                if best is None or d < best[0]:
                    best = (d, u, w)
        assert best is not None
        _, u, w = best
        graph.add_edge(u, w, _edge_length(graph, u, w, rng, weight_jitter))
        main |= island
