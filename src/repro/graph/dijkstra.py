"""Shortest-path primitives over :class:`~repro.graph.road_network.RoadNetwork`.

These routines back the exact reference oracle, NVD construction
(multi-source Dijkstra), ALT landmark tables (single-source Dijkstra),
and the bidirectional baseline.  Everything else in the repository
reuses them rather than re-implementing graph searches.

Each public function is a dispatcher: when the CSR kernels are active
(``REPRO_KERNELS`` — see :mod:`repro.kernels`) the search runs over the
graph's cached flat-array view in C; otherwise the pure-Python
list-based body below runs.  The python bodies are the semantic
reference — the kernels' property tests compare against them — so they
are kept verbatim, not as dead code.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Iterable, Sequence

from repro import kernels
from repro.graph.road_network import RoadNetwork

INFINITY = math.inf


def dijkstra_all(graph: RoadNetwork, source: int) -> list[float]:
    """Distances from ``source`` to every vertex (``inf`` if unreachable)."""
    if kernels.enabled():
        csr = graph.csr()
        workspace = kernels.get_workspace(csr.num_vertices)
        return list(kernels.sssp(csr, source, workspace).tolist())
    distances = [INFINITY] * graph.num_vertices
    distances[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = graph.neighbors
    while heap:
        dist_u, u = heapq.heappop(heap)
        if dist_u > distances[u]:
            continue
        for v, weight in neighbors(u):
            candidate = dist_u + weight
            if candidate < distances[v]:
                distances[v] = candidate
                heapq.heappush(heap, (candidate, v))
    return distances


def dijkstra_distance(graph: RoadNetwork, source: int, target: int) -> float:
    """Point-to-point distance with early termination at ``target``.

    The CSR path trades the early exit for a memoised full SSSP: the
    refinement loop asks for many targets from one source, so the first
    call pays one C-level search and the rest are O(1) lookups.
    """
    if source == target:
        return 0.0
    if kernels.enabled():
        csr = graph.csr()
        workspace = kernels.get_workspace(csr.num_vertices)
        return kernels.p2p(csr, source, target, workspace)
    distances = [INFINITY] * graph.num_vertices
    distances[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = graph.neighbors
    while heap:
        dist_u, u = heapq.heappop(heap)
        if u == target:
            return dist_u
        if dist_u > distances[u]:
            continue
        for v, weight in neighbors(u):
            candidate = dist_u + weight
            if candidate < distances[v]:
                distances[v] = candidate
                heapq.heappush(heap, (candidate, v))
    return INFINITY


def dijkstra_to_targets(
    graph: RoadNetwork, source: int, targets: Iterable[int]
) -> dict[int, float]:
    """Distances from ``source`` to each target, stopping once all are settled."""
    if kernels.enabled():
        csr = graph.csr()
        workspace = kernels.get_workspace(csr.num_vertices)
        return kernels.to_targets(csr, source, targets, workspace)
    remaining = set(targets)
    result: dict[int, float] = {}
    if source in remaining:
        result[source] = 0.0
        remaining.discard(source)
    if not remaining:
        return result
    distances = [INFINITY] * graph.num_vertices
    distances[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = graph.neighbors
    while heap and remaining:
        dist_u, u = heapq.heappop(heap)
        if dist_u > distances[u]:
            continue
        if u in remaining:
            result[u] = dist_u
            remaining.discard(u)
            if not remaining:
                break
        for v, weight in neighbors(u):
            candidate = dist_u + weight
            if candidate < distances[v]:
                distances[v] = candidate
                heapq.heappush(heap, (candidate, v))
    for t in remaining:
        result[t] = INFINITY
    return result


def multi_source_dijkstra(
    graph: RoadNetwork, sources: Sequence[int]
) -> tuple[list[float], list[int]]:
    """Grow shortest-path trees from all ``sources`` simultaneously.

    This is the "parallel Dijkstra" used to build network Voronoi
    diagrams: every vertex is labelled with the distance to, and identity
    of, its closest source.

    Returns
    -------
    (distances, owners):
        ``owners[v]`` is the source vertex closest to ``v`` (ties broken
        by heap order, deterministically by smaller distance then vertex
        id), or ``-1`` if ``v`` is unreachable from every source.
    """
    if not sources:
        raise ValueError("multi_source_dijkstra needs at least one source")
    if kernels.enabled():
        dist, owner = kernels.multi_source(graph.csr(), sources)
        return list(dist.tolist()), list(owner.tolist())
    distances = [INFINITY] * graph.num_vertices
    owners = [-1] * graph.num_vertices
    heap: list[tuple[float, int, int]] = []
    for s in sorted(set(sources)):
        distances[s] = 0.0
        owners[s] = s
        heap.append((0.0, s, s))
    heapq.heapify(heap)
    neighbors = graph.neighbors
    while heap:
        dist_u, u, owner = heapq.heappop(heap)
        if dist_u > distances[u]:
            continue
        for v, weight in neighbors(u):
            candidate = dist_u + weight
            if candidate < distances[v]:
                distances[v] = candidate
                owners[v] = owner
                heapq.heappush(heap, (candidate, v, owner))
    return distances, owners


def bidirectional_dijkstra(graph: RoadNetwork, source: int, target: int) -> float:
    """Point-to-point distance by meeting forward and backward searches.

    Under the CSR kernels this baseline routes to the same memoised SSSP
    as :func:`dijkstra_distance`: the C search beats a python meet-in-
    the-middle outright, and repeated same-source calls become O(1).
    """
    if source == target:
        return 0.0
    if kernels.enabled():
        csr = graph.csr()
        workspace = kernels.get_workspace(csr.num_vertices)
        return kernels.p2p(csr, source, target, workspace)
    dist_f = {source: 0.0}
    dist_b = {target: 0.0}
    heap_f: list[tuple[float, int]] = [(0.0, source)]
    heap_b: list[tuple[float, int]] = [(0.0, target)]
    settled_f: set[int] = set()
    settled_b: set[int] = set()
    best = INFINITY
    neighbors = graph.neighbors
    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        # Expand the smaller frontier for balance.
        if heap_f[0][0] <= heap_b[0][0]:
            heap, dist, settled, other_dist = heap_f, dist_f, settled_f, dist_b
        else:
            heap, dist, settled, other_dist = heap_b, dist_b, settled_b, dist_f
        dist_u, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u in other_dist:
            best = min(best, dist_u + other_dist[u])
        for v, weight in neighbors(u):
            candidate = dist_u + weight
            if candidate < dist.get(v, INFINITY):
                dist[v] = candidate
                heapq.heappush(heap, (candidate, v))
                if v in other_dist:
                    best = min(best, candidate + other_dist[v])
    return best


def dijkstra_within(
    adjacency: dict[int, list[tuple[int, float]]], source: int
) -> dict[int, float]:
    """Single-source Dijkstra restricted to a subgraph adjacency dict.

    Used by G-tree and ROAD to compute leaf-internal border distances.
    """
    distances: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        dist_u, u = heapq.heappop(heap)
        if dist_u > distances.get(u, INFINITY):
            continue
        for v, weight in adjacency.get(u, ()):
            candidate = dist_u + weight
            if candidate < distances.get(v, INFINITY):
                distances[v] = candidate
                heapq.heappush(heap, (candidate, v))
    return distances


def network_expansion_knn(
    graph: RoadNetwork,
    source: int,
    k: int,
    is_match: Callable[[int], bool],
) -> list[tuple[int, float]]:
    """Incremental network expansion: the classic kNN baseline.

    Expands Dijkstra from ``source`` and collects the first ``k`` settled
    vertices for which ``is_match(vertex)`` is true.  Returns
    ``[(vertex, distance)]`` sorted by distance (ties by vertex id, the
    heap's settle order — the CSR kernel reproduces this via a stable
    argsort).
    """
    if k <= 0:
        return []
    if kernels.enabled():
        csr = graph.csr()
        workspace = kernels.get_workspace(csr.num_vertices)
        return kernels.match_scan(csr, source, k, is_match, workspace)
    distances = [INFINITY] * graph.num_vertices
    distances[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    results: list[tuple[int, float]] = []
    neighbors = graph.neighbors
    while heap:
        dist_u, u = heapq.heappop(heap)
        if dist_u > distances[u]:
            continue
        if is_match(u):
            results.append((u, dist_u))
            if len(results) == k:
                break
        for v, weight in neighbors(u):
            candidate = dist_u + weight
            if candidate < distances[v]:
                distances[v] = candidate
                heapq.heappush(heap, (candidate, v))
    return results
