"""POIs located on edges (paper §2).

The paper models POIs on vertices for exposition and notes that "POIs
on edges would still be generated as candidates in on-demand inverted
heaps".  The standard reduction materialises an edge-located POI as a
new vertex splitting the edge; this module implements it so users with
mid-edge POIs (the common OSM case) can use every index unchanged.

Because the reduction changes the vertex set, apply it *before*
building any index.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.road_network import RoadNetwork, RoadNetworkError


@dataclass(frozen=True)
class EdgePlacement:
    """A POI located ``fraction`` of the way along edge ``(u, v)``."""

    u: int
    v: int
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction < 1.0:
            raise ValueError("fraction must be strictly inside (0, 1)")
        if self.u == self.v:
            raise ValueError("an edge placement needs two distinct endpoints")


def subdivide_for_pois(
    graph: RoadNetwork, placements: list[EdgePlacement]
) -> tuple[RoadNetwork, list[int]]:
    """Return a new network with one extra vertex per edge placement.

    The original edge ``(u, v)`` with weight ``w`` is replaced by
    ``(u, p)`` and ``(p, v)`` weighted ``fraction * w`` and
    ``(1 - fraction) * w``; coordinates are interpolated.  Multiple
    placements on the same edge are applied in fraction order so each
    splits the remaining sub-segment.

    Returns ``(new_graph, poi_vertices)`` with ``poi_vertices[i]`` the
    vertex id created for ``placements[i]``.
    """
    for placement in placements:
        if graph.edge_weight(placement.u, placement.v) is None:
            raise RoadNetworkError(
                f"no edge ({placement.u}, {placement.v}) to place a POI on"
            )
    new_graph = RoadNetwork(graph.num_vertices + len(placements))
    for v in graph.vertices():
        new_graph.set_coordinates(v, *graph.coordinates(v))

    # Group placements per undirected edge, keep input order -> ids.
    by_edge: dict[tuple[int, int], list[tuple[int, EdgePlacement]]] = {}
    for index, placement in enumerate(placements):
        u, v = placement.u, placement.v
        key = (min(u, v), max(u, v))
        # Normalise the fraction to run from key[0] to key[1].
        fraction = placement.fraction if u == key[0] else 1.0 - placement.fraction
        by_edge.setdefault(key, []).append(
            (index, EdgePlacement(key[0], key[1], fraction))
        )

    poi_vertices = [-1] * len(placements)
    next_vertex = graph.num_vertices
    split_edges = set(by_edge)
    for u, v, weight in graph.edges():
        key = (min(u, v), max(u, v))
        if key not in split_edges:
            new_graph.add_edge(u, v, weight)
    for key, entries in by_edge.items():
        u, v = key
        weight = graph.edge_weight(u, v)
        assert weight is not None
        (ux, uy), (vx, vy) = graph.coordinates(u), graph.coordinates(v)
        entries.sort(key=lambda pair: pair[1].fraction)
        previous_vertex = u
        previous_fraction = 0.0
        for index, placement in entries:
            poi = next_vertex
            next_vertex += 1
            poi_vertices[index] = poi
            f = placement.fraction
            new_graph.set_coordinates(
                poi, ux + (vx - ux) * f, uy + (vy - uy) * f
            )
            segment = (f - previous_fraction) * weight
            if segment <= 0:
                raise ValueError(
                    f"coincident placements on edge {key} are not supported"
                )
            new_graph.add_edge(previous_vertex, poi, segment)
            previous_vertex = poi
            previous_fraction = f
        tail = (1.0 - previous_fraction) * weight
        new_graph.add_edge(previous_vertex, v, tail)
    return new_graph, poi_vertices
