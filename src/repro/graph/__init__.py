"""Road-network graph substrate: structure, searches, generators, I/O."""

from repro.graph.dijkstra import (
    INFINITY,
    bidirectional_dijkstra,
    dijkstra_all,
    dijkstra_distance,
    dijkstra_to_targets,
    multi_source_dijkstra,
    network_expansion_knn,
)
from repro.graph.edge_pois import EdgePlacement, subdivide_for_pois
from repro.graph.generators import perturbed_grid_network, random_geometric_network
from repro.graph.io import DimacsFormatError, read_dimacs, write_dimacs
from repro.graph.road_network import RoadNetwork, RoadNetworkError

__all__ = [
    "INFINITY",
    "RoadNetwork",
    "RoadNetworkError",
    "DimacsFormatError",
    "EdgePlacement",
    "bidirectional_dijkstra",
    "dijkstra_all",
    "dijkstra_distance",
    "dijkstra_to_targets",
    "multi_source_dijkstra",
    "network_expansion_knn",
    "perturbed_grid_network",
    "random_geometric_network",
    "read_dimacs",
    "subdivide_for_pois",
    "write_dimacs",
]
