"""Road-network graph substrate.

The paper models a road network as a connected undirected graph
``G = (V, E)`` with positive edge weights (travel time or length) and
vertex coordinates.  This module provides :class:`RoadNetwork`, the single
graph representation shared by every index in the repository (K-SPIN,
Contraction Hierarchies, hub labeling, G-tree, ROAD, FS-FBS, NVDs).

Vertices are dense integers ``0 .. n-1``.  Adjacency is stored as one
Python list per vertex of ``(neighbor, weight)`` tuples, which profiling
showed to be the fastest pure-Python layout for Dijkstra-style scans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.kernels.csr import CSRGraph


class RoadNetworkError(ValueError):
    """Raised for structurally invalid road-network operations."""


class RoadNetwork:
    """An undirected, weighted road network with vertex coordinates.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0 .. num_vertices - 1``.

    Examples
    --------
    >>> g = RoadNetwork(3)
    >>> g.add_edge(0, 1, 2.0)
    >>> g.add_edge(1, 2, 3.0)
    >>> sorted(g.neighbors(1))
    [(0, 2.0), (2, 3.0)]
    """

    __slots__ = ("_adjacency", "_coordinates", "_num_edges", "_csr")

    def __init__(self, num_vertices: int) -> None:
        if num_vertices <= 0:
            raise RoadNetworkError("a road network needs at least one vertex")
        self._adjacency: list[list[tuple[int, float]]] = [
            [] for _ in range(num_vertices)
        ]
        self._coordinates: list[tuple[float, float]] = [
            (0.0, 0.0) for _ in range(num_vertices)
        ]
        self._num_edges = 0
        self._csr: CSRGraph | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add an undirected edge ``(u, v)`` with positive ``weight``.

        Parallel edges are collapsed: if the edge already exists, the
        smaller weight is kept (standard road-network convention).
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise RoadNetworkError(f"self-loop on vertex {u} is not allowed")
        if weight <= 0:
            raise RoadNetworkError(
                f"edge ({u}, {v}) must have positive weight, got {weight!r}"
            )
        existing = self.edge_weight(u, v)
        if existing is not None:
            if weight < existing:
                self._replace_edge_weight(u, v, weight)
            return
        self._adjacency[u].append((v, float(weight)))
        self._adjacency[v].append((u, float(weight)))
        self._num_edges += 1
        self._csr = None

    def set_coordinates(self, v: int, x: float, y: float) -> None:
        """Attach planar coordinates to vertex ``v`` (used by quadtrees)."""
        self._check_vertex(v)
        self._coordinates[v] = (float(x), float(y))

    def _replace_edge_weight(self, u: int, v: int, weight: float) -> None:
        for adjacency, other in ((self._adjacency[u], v), (self._adjacency[v], u)):
            for index, (neighbor, _) in enumerate(adjacency):
                if neighbor == other:
                    adjacency[index] = (other, float(weight))
                    break
        self._csr = None

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._num_edges

    def vertices(self) -> range:
        """All vertex ids as a range."""
        return range(len(self._adjacency))

    def neighbors(self, v: int) -> Sequence[tuple[int, float]]:
        """The ``(neighbor, weight)`` pairs adjacent to ``v``."""
        self._check_vertex(v)
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """Number of edges incident to ``v``."""
        self._check_vertex(v)
        return len(self._adjacency[v])

    def edge_weight(self, u: int, v: int) -> float | None:
        """Weight of edge ``(u, v)``, or ``None`` if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        for neighbor, weight in self._adjacency[u]:
            if neighbor == v:
                return weight
        return None

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` exists."""
        return self.edge_weight(u, v) is not None

    def coordinates(self, v: int) -> tuple[float, float]:
        """Planar coordinates of vertex ``v``."""
        self._check_vertex(v)
        return self._coordinates[v]

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate undirected edges once each, as ``(u, v, weight)``, u < v."""
        for u, adjacency in enumerate(self._adjacency):
            for v, weight in adjacency:
                if u < v:
                    yield u, v, weight

    def bounding_box(self) -> tuple[float, float, float, float]:
        """Axis-aligned bounding box of all coordinates: (minx, miny, maxx, maxy)."""
        xs = [x for x, _ in self._coordinates]
        ys = [y for _, y in self._coordinates]
        return min(xs), min(ys), max(xs), max(ys)

    def is_connected(self) -> bool:
        """Whether the network is a single connected component."""
        return len(self.component_of(0)) == self.num_vertices

    def component_of(self, start: int) -> set[int]:
        """Vertices reachable from ``start`` (iterative DFS)."""
        self._check_vertex(start)
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v, _ in self._adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def subgraph_adjacency(
        self, vertices: Iterable[int]
    ) -> dict[int, list[tuple[int, float]]]:
        """Adjacency restricted to ``vertices`` (used by G-tree partitioning)."""
        keep = set(vertices)
        return {
            u: [(v, w) for v, w in self._adjacency[u] if v in keep] for u in keep
        }

    def csr(self) -> CSRGraph:
        """The cached flat-array (CSR) view of this graph.

        Built lazily on first use and invalidated by every mutation
        (:meth:`add_edge`, weight replacement), so a returned view is a
        consistent immutable snapshot.  Anything keyed on the view's
        object identity (workspace SSSP memos) is therefore invalidated
        for free when the graph changes.
        """
        if self._csr is None:
            from repro.kernels.csr import CSRGraph

            self._csr = CSRGraph.from_road_network(self)
        return self._csr

    # The CSR cache is derived data: exclude it from pickles so worker
    # snapshots stay small and each process rebuilds (or pre-warms via
    # ``repro.kernels.warm``) its own view.
    def __getstate__(self) -> dict[str, object]:
        return {
            "adjacency": self._adjacency,
            "coordinates": self._coordinates,
            "num_edges": self._num_edges,
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        self._adjacency = state["adjacency"]  # type: ignore[assignment]
        self._coordinates = state["coordinates"]  # type: ignore[assignment]
        self._num_edges = int(state["num_edges"])  # type: ignore[arg-type]
        self._csr = None

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint of the graph structure.

        Counts adjacency tuples and coordinate pairs with CPython object
        sizes; used for the "Input" rows of the index-size experiments.
        """
        per_entry = 72  # tuple(2) + float + int boxes, empirical CPython cost
        adjacency = sum(len(a) for a in self._adjacency) * per_entry
        coordinates = len(self._coordinates) * per_entry
        return adjacency + coordinates

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._adjacency):
            raise RoadNetworkError(
                f"vertex {v} out of range [0, {len(self._adjacency)})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoadNetwork(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
