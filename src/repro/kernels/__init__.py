"""Flat-array (CSR) graph kernels — the repository's fast path.

Every query and index build ultimately bottoms out in Dijkstra-style
scans.  The pure-Python implementations in :mod:`repro.graph.dijkstra`
walk per-vertex lists of ``(neighbor, weight)`` tuples; this package
re-expresses the same searches over a compressed-sparse-row (CSR) view
of the graph — three numpy arrays (``indptr``/``indices``/``weights``)
built once, cached on the graph object, and invalidated by mutation —
and dispatches the hot ones to :mod:`scipy.sparse.csgraph`.

Backend selection
-----------------
The ``REPRO_KERNELS`` environment variable picks the backend:

``auto`` (default)
    Use the CSR kernels when scipy is importable, else fall back to the
    list-based implementations.
``csr`` / ``numpy``
    Request the CSR kernels (still silently falls back when scipy is
    missing, so a bare checkout keeps working).
``python``
    Force the list-based reference implementations.  This is the
    correctness oracle the property tests compare against and the
    baseline the perf-regression harness measures speedups over.

The list-based code paths are never deleted: they define the semantics,
and :func:`use_backend` lets tests and benchmarks flip between the two
in-process.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.kernels.csr import CSRGraph
from repro.kernels.search import (
    match_scan,
    multi_source,
    p2p,
    scipy_available,
    sssp,
    sssp_rows,
    to_targets,
)
from repro.kernels.workspace import SearchWorkspace, get_workspace

__all__ = [
    "CSRGraph",
    "SearchWorkspace",
    "active_backend",
    "enabled",
    "flat_buffers_enabled",
    "get_workspace",
    "match_scan",
    "multi_source",
    "p2p",
    "scipy_available",
    "sssp",
    "sssp_rows",
    "to_targets",
    "use_backend",
    "warm",
]

#: Backend names accepted by ``REPRO_KERNELS`` / :func:`use_backend`.
_CHOICES = ("auto", "csr", "numpy", "python")

#: In-process override installed by :func:`use_backend`; wins over the
#: environment while a ``with use_backend(...)`` block is active.
_override: str | None = None


def _requested() -> str:
    """The raw backend request (override, then environment, then auto)."""
    if _override is not None:
        return _override
    value = os.environ.get("REPRO_KERNELS", "auto").strip().lower()
    return value if value in _CHOICES else "auto"


def active_backend() -> str:
    """The backend actually in effect: ``"csr"`` or ``"python"``.

    ``csr`` requires scipy; every other request degrades to the
    list-based implementations rather than failing.
    """
    choice = _requested()
    if choice == "python":
        return "python"
    return "csr" if scipy_available() else "python"


def enabled() -> bool:
    """True when searches dispatch to the CSR kernels."""
    return active_backend() == "csr"


def flat_buffers_enabled() -> bool:
    """True unless the python backend is forced.

    The generation-stamped :class:`SearchWorkspace` buffers are pure
    python — no scipy involved — so label-setting searches that only
    need preallocated scratch (the contraction hierarchy's bidirectional
    query) stay fast even on a scipy-less interpreter.
    """
    return _requested() != "python"


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Force a backend within a ``with`` block (benchmarks, tests).

    >>> from repro import kernels
    >>> with kernels.use_backend("python"):
    ...     assert kernels.active_backend() == "python"
    """
    if name not in _CHOICES:
        raise ValueError(f"unknown kernels backend {name!r}; pick one of {_CHOICES}")
    global _override
    previous = _override
    _override = name
    try:
        yield
    finally:
        _override = previous


def warm(graph: object) -> None:
    """Eagerly build (and cache) a graph's CSR views.

    Call this *before* forking worker processes so the arrays are
    materialised once in the parent and shared copy-on-write, instead of
    being rebuilt lazily in every child.  A no-op when the python
    backend is active or the object exposes no CSR accessors.
    """
    if not enabled():
        return
    for accessor in ("csr", "csr_out", "csr_in"):
        build = getattr(graph, accessor, None)
        if callable(build):
            build()
