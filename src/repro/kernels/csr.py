"""Compressed-sparse-row (CSR) graph views.

A :class:`CSRGraph` is three flat numpy arrays:

* ``indptr`` — ``int64[n + 1]``; vertex ``v``'s arcs occupy the slice
  ``indptr[v]:indptr[v + 1]`` of the other two arrays;
* ``indices`` — ``int32[m]``; arc heads;
* ``weights`` — ``float64[m]``; arc weights.

Undirected networks store *both* arcs of every edge, so searches always
run ``directed=True`` over the matrix — scipy then skips its symmetrise
pass and the semantics match the list-based code exactly.  The arrays
are immutable by convention: graph mutation invalidates the cached view
and the next build produces a fresh object, so object identity doubles
as a cache epoch for anything keyed on the view (see
:class:`~repro.kernels.workspace.SearchWorkspace`).
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Sequence

import numpy as np


class CSRGraph:
    """An immutable flat-array adjacency view of a road network."""

    __slots__ = ("indptr", "indices", "weights", "num_vertices", "num_arcs", "_matrix")

    def __init__(self, indptr: Any, indices: Any, weights: Any) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        self.num_vertices = int(self.indptr.shape[0]) - 1
        self.num_arcs = int(self.indices.shape[0])
        if int(self.indptr[-1]) != self.num_arcs or self.weights.shape != self.indices.shape:
            raise ValueError("inconsistent CSR arrays")
        self._matrix: Any = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_arcs(
        cls,
        num_vertices: int,
        arcs_of: Callable[[int], Sequence[tuple[int, float]]],
    ) -> "CSRGraph":
        """Build from any per-vertex arc accessor (tail-major order)."""
        heads: list[int] = []
        weights: list[float] = []
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        for v in range(num_vertices):
            arcs = arcs_of(v)
            indptr[v + 1] = indptr[v] + len(arcs)
            for head, weight in arcs:
                heads.append(head)
                weights.append(weight)
        return cls(
            indptr,
            np.asarray(heads, dtype=np.int32),
            np.asarray(weights, dtype=np.float64),
        )

    @classmethod
    def from_road_network(cls, graph: Any) -> "CSRGraph":
        """CSR view of an undirected :class:`RoadNetwork` (both arcs stored)."""
        return cls.from_arcs(graph.num_vertices, graph.neighbors)

    @classmethod
    def from_directed(cls, graph: Any, reverse: bool = False) -> "CSRGraph":
        """CSR view of a :class:`DirectedRoadNetwork`.

        ``reverse=True`` stores the transposed graph (arcs flipped), so
        reverse searches become forward searches over this view.
        """
        arcs_of = graph.in_edges if reverse else graph.out_edges
        return cls.from_arcs(graph.num_vertices, arcs_of)

    # ------------------------------------------------------------------
    # scipy interop
    # ------------------------------------------------------------------
    def matrix(self) -> Any:
        """The arrays wrapped as a ``scipy.sparse.csr_matrix`` (cached).

        Raises ``ImportError`` when scipy is missing; callers gate on
        :func:`repro.kernels.scipy_available` first.
        """
        if self._matrix is None:
            from scipy.sparse import csr_matrix

            n = self.num_vertices
            self._matrix = csr_matrix(
                (self.weights, self.indices, self.indptr), shape=(n, n)
            )
        return self._matrix

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def structural_fingerprint(self) -> str:
        """sha256 over the exact array bytes plus the dimensions.

        Two CSR views are interchangeable for every search iff their
        fingerprints match; the cluster tests use this to prove workers
        share bit-identical graph views.
        """
        digest = hashlib.sha256()
        digest.update(f"csr:{self.num_vertices}:{self.num_arcs}".encode())
        digest.update(self.indptr.tobytes())
        digest.update(self.indices.tobytes())
        digest.update(self.weights.tobytes())
        return digest.hexdigest()

    def memory_bytes(self) -> int:
        """Exact array footprint (the whole point of the flat layout)."""
        return int(self.indptr.nbytes + self.indices.nbytes + self.weights.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(num_vertices={self.num_vertices}, num_arcs={self.num_arcs})"
