"""Search primitives over :class:`~repro.kernels.csr.CSRGraph`.

Each function mirrors one list-based routine in
:mod:`repro.graph.dijkstra` and must return *identical distances* — the
property tests in ``tests/test_kernels.py`` enforce this against random
perturbed-grid networks.  The heavy lifting is delegated to
``scipy.sparse.csgraph.dijkstra`` (a C implementation over exactly our
flat arrays); everything here is import-gated so the package works,
degraded, on a scipy-less interpreter.

Two deliberate semantic notes:

* CSR views store both arcs of an undirected edge, so every call runs
  ``directed=True`` — same results, and scipy skips its symmetrise pass.
* ``multi_source`` breaks exact distance ties by scipy's internal heap
  order, where the list-based code uses ``(distance, vertex, owner)``
  heap order.  Both owners are true nearest sources; real-valued road
  weights make exact ties measure-zero, and all processes running the
  same backend agree bit-for-bit (what the cluster fingerprint tests
  require).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

import numpy as np

from repro.kernels.csr import CSRGraph
from repro.kernels.workspace import SearchWorkspace


def _load_scipy_dijkstra() -> Callable[..., Any] | None:
    try:
        from scipy.sparse.csgraph import dijkstra
    except ImportError:  # pragma: no cover - exercised on scipy-less hosts
        return None
    return dijkstra  # type: ignore[no-any-return]


_DIJKSTRA = _load_scipy_dijkstra()


def scipy_available() -> bool:
    """Whether the scipy-backed kernels can run in this interpreter."""
    return _DIJKSTRA is not None


def _require_dijkstra() -> Callable[..., Any]:
    if _DIJKSTRA is None:  # pragma: no cover - callers gate on scipy_available
        raise RuntimeError(
            "CSR kernels need scipy; set REPRO_KERNELS=python or install scipy"
        )
    return _DIJKSTRA


def sssp(csr: CSRGraph, source: int, workspace: SearchWorkspace | None = None) -> Any:
    """Distances from ``source`` to every vertex (``inf`` if unreachable).

    With a workspace, the run is memoised under ``(csr, source)`` so the
    refinement step's repeated same-source queries cost one search total.
    The returned array is workspace-owned scratch — read, don't mutate.
    """
    if workspace is not None:
        cached = workspace.cached_sssp(csr, source)
        if cached is not None:
            return cached
    distances = _require_dijkstra()(csr.matrix(), directed=True, indices=source)
    if workspace is not None:
        return workspace.store_sssp(csr, source, distances)
    return distances


def sssp_rows(csr: CSRGraph, sources: Iterable[int]) -> Any:
    """One distance row per source, as a ``(len(sources), n)`` array.

    This is the batched form the ALT landmark table wants: one C-level
    call instead of ``len(sources)`` python Dijkstras.
    """
    index_list = list(sources)
    if not index_list:
        return np.empty((0, csr.num_vertices), dtype=np.float64)
    rows = _require_dijkstra()(csr.matrix(), directed=True, indices=index_list)
    return np.atleast_2d(rows)


def p2p(
    csr: CSRGraph,
    source: int,
    target: int,
    workspace: SearchWorkspace | None = None,
) -> float:
    """Point-to-point distance ``d(source -> target)``."""
    if source == target:
        return 0.0
    return float(sssp(csr, source, workspace)[target])


def to_targets(
    csr: CSRGraph,
    source: int,
    targets: Iterable[int],
    workspace: SearchWorkspace | None = None,
) -> dict[int, float]:
    """Distances from ``source`` to each target (``inf`` if unreachable)."""
    distances = sssp(csr, source, workspace)
    return {t: float(distances[t]) for t in set(targets)}


def multi_source(csr: CSRGraph, sources: Iterable[int]) -> tuple[Any, Any]:
    """Grow shortest-path trees from all ``sources`` at once.

    Returns ``(distances, owners)`` as numpy arrays; ``owners[v]`` is
    the nearest source (``-1`` where none is reachable).  This is the
    NVD labelling kernel: one C call instead of a python heap walk.
    """
    source_list = sorted(set(sources))
    if not source_list:
        raise ValueError("multi_source needs at least one source")
    distances, _predecessors, owners = _require_dijkstra()(
        csr.matrix(),
        directed=True,
        indices=source_list,
        min_only=True,
        return_predecessors=True,
    )
    owners = owners.astype(np.int64, copy=True)
    owners[~np.isfinite(distances)] = -1
    return distances, owners


def match_scan(
    csr: CSRGraph,
    source: int,
    k: int,
    is_match: Callable[[int], bool],
    workspace: SearchWorkspace | None = None,
) -> list[tuple[int, float]]:
    """Incremental-expansion kNN: first ``k`` matching vertices by distance.

    The list-based baseline settles vertices in ``(distance, vertex)``
    heap order; scanning a stable argsort of the full distance array
    visits vertices in exactly that order, so results (including tie
    order) are identical.
    """
    if k <= 0:
        return []
    distances = sssp(csr, source, workspace)
    order = np.argsort(distances, kind="stable")
    results: list[tuple[int, float]] = []
    for v in order.tolist():
        distance = float(distances[v])
        if math.isinf(distance):
            break
        if is_match(v):
            results.append((v, distance))
            if len(results) == k:
                break
    return results
