"""Reusable, generation-stamped search workspaces.

A :class:`SearchWorkspace` owns the mutable scratch state a search
needs, so the hot path performs no O(|V|) allocation per query:

* **Stamped flat buffers** for label-setting searches (the contraction
  hierarchy's bidirectional query): a ``values`` list plus a parallel
  ``stamps`` list of generation numbers.  ``begin()`` bumps the
  generation; a slot whose stamp is stale *is* "infinity", so resetting
  between queries costs O(1) instead of O(|V|).
* **A one-slot SSSP memo** for the CSR kernels: the distance array of
  the most recent single-source run, keyed on ``(CSRGraph, source)``.
  The exact-distance refinement step asks for ``d(query, c)`` once per
  candidate with the *same* query vertex, so one SSSP plus O(1) lookups
  replaces a point-to-point search per candidate.  The key holds the
  CSR view by identity: graph mutation installs a fresh ``CSRGraph``,
  so stale hits are impossible by construction.

Workspaces are intentionally **not** thread-safe — the whole point is
unguarded mutation on the hot path.  :func:`get_workspace` therefore
hands every thread (serve worker, pool thread) its own instance via a
``threading.local`` registry, which keeps the KSP002 shared-state lint
rule honest: no buffer is ever visible to two threads.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from repro.kernels.csr import CSRGraph

#: Stamp value meaning "never touched" (generation counters start at 1).
_NEVER = 0


class SearchWorkspace:
    """Per-thread scratch buffers for repeated searches on one graph size."""

    __slots__ = (
        "num_vertices",
        "generation",
        "_stamped",
        "_memo_key",
        "_memo_dist",
        "sssp_runs",
        "sssp_hits",
    )

    def __init__(self, num_vertices: int) -> None:
        if num_vertices <= 0:
            raise ValueError("workspace needs at least one vertex slot")
        self.num_vertices = num_vertices
        self.generation = _NEVER
        #: side -> (values, stamps); allocated on first use per side.
        self._stamped: dict[int, tuple[list[float], list[int]]] = {}
        self._memo_key: tuple[CSRGraph, int] | None = None
        self._memo_dist: Any = None
        self.sssp_runs = 0
        self.sssp_hits = 0

    # ------------------------------------------------------------------
    # Stamped flat buffers (python-side label-setting searches)
    # ------------------------------------------------------------------
    def begin(self) -> int:
        """Start a new search: bump and return the generation stamp.

        Every buffer slot written during the previous search becomes
        logically infinite again, without touching memory.
        """
        self.generation += 1
        return self.generation

    def stamped(self, side: int = 0) -> tuple[list[float], list[int]]:
        """The ``side``-th ``(values, stamps)`` buffer pair.

        Bidirectional searches use sides 0 (forward) and 1 (backward).
        A slot ``v`` holds a live value only when
        ``stamps[v] == self.generation``.
        """
        pair = self._stamped.get(side)
        if pair is None:
            pair = ([0.0] * self.num_vertices, [_NEVER] * self.num_vertices)
            self._stamped[side] = pair
        return pair

    # ------------------------------------------------------------------
    # SSSP memo (CSR kernels)
    # ------------------------------------------------------------------
    def cached_sssp(self, csr: CSRGraph, source: int) -> Any | None:
        """The memoised distance array for ``(csr, source)``, or ``None``.

        Treat the returned array as read-only; it is reused verbatim by
        every lookup until a different ``(csr, source)`` is stored.
        """
        if self._memo_key is not None:
            key_csr, key_source = self._memo_key
            if key_csr is csr and key_source == source:
                self.sssp_hits += 1
                return self._memo_dist
        return None

    def store_sssp(self, csr: CSRGraph, source: int, distances: Any) -> Any:
        """Memoise ``distances`` for ``(csr, source)`` and return it."""
        self._memo_dist = np.ascontiguousarray(distances, dtype=np.float64)
        self._memo_key = (csr, source)
        self.sssp_runs += 1
        return self._memo_dist

    def invalidate(self) -> None:
        """Drop the SSSP memo and reset stamps (tests; not needed on the
        hot path — identity keys and generations already prevent reuse)."""
        self._memo_key = None
        self._memo_dist = None
        self.generation = _NEVER
        self._stamped.clear()


class _Registry(threading.local):
    """Per-thread workspace pool, keyed by graph size."""

    def __init__(self) -> None:
        self.by_size: dict[int, SearchWorkspace] = {}


_REGISTRY = _Registry()


def get_workspace(num_vertices: int) -> SearchWorkspace:
    """The calling thread's workspace for graphs of ``num_vertices``.

    Each thread owns its buffers outright — two threads can never
    receive the same :class:`SearchWorkspace` instance.
    """
    workspace = _REGISTRY.by_size.get(num_vertices)
    if workspace is None:
        workspace = SearchWorkspace(num_vertices)
        _REGISTRY.by_size[num_vertices] = workspace
    return workspace
