"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``
    Print the dataset ladder's Table-2 statistics.
``build``
    Build a K-SPIN index over a ladder dataset (or DIMACS files) and
    save it to disk.
``query``
    Load a saved index and answer a BkNN or top-k query.
``serve``
    Hold an index in memory and serve concurrent HTTP/JSON queries.
``explain``
    Run one query under a forced trace and pretty-print its span tree
    with per-stage timings and the §5.1 cost counters.
``profile``
    Sampling profiler: attach to a live server (start/collect over
    ``/v1/debug/profile``) or profile a local bench run; writes
    collapsed flame-graph text (``flamegraph.pl`` / speedscope input).
``events``
    Dump or follow the server's flight-recorder event stream
    (``/v1/debug/events``): admission sheds, cache evictions, worker
    lifecycle, SLO burn transitions — one causally-ordered record.
``sketch``
    Build the probabilistic-sketch registry for an index and report
    per-shard Bloom fill ratios, HyperLogLog cardinality estimates
    against the true inverted sizes, and the lossy-counter top-N hot
    keywords.
``lint``
    Run the project-invariant linter (KSP rules, stdlib-only) over the
    source tree; non-zero exit on any finding.
``typecheck``
    Run the strict typing gate (``mypy --strict``; pinned dev
    dependency) over the source tree.
``demo``
    Run the Figure-1 quickstart end to end.

Examples
--------
::

    python -m repro stats
    python -m repro build --dataset FL-S --oracle ch --out /tmp/fl.kspin
    python -m repro query --index /tmp/fl.kspin --vertex 100 \
        --keywords kw0001 kw0002 --kind topk --k 5 --stats
    python -m repro serve --index /tmp/fl.kspin --port 8080 --workers 8
    curl 'http://127.0.0.1:8080/bknn?vertex=100&k=5&keywords=kw0001'
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.bench import print_table
    from repro.datasets import statistics_table

    rows = statistics_table()
    print_table(
        "Dataset ladder (Table 2 analogue)",
        ["Region", "|V|", "|E|", "|O|", "|doc(V)|", "|W|"],
        [
            [r["Region"], r["|V|"], r["|E|"], r["|O|"], r["|doc(V)|"], r["|W|"]]
            for r in rows
        ],
    )
    return 0


def _build_oracle(name: str, graph):
    from repro.distance import (
        BidirectionalDijkstraOracle,
        CompositeOracle,
        ContractionHierarchy,
        DijkstraOracle,
        GTree,
        HubLabeling,
    )

    if name == "dijkstra":
        return DijkstraOracle(graph)
    if name == "bidijkstra":
        return BidirectionalDijkstraOracle(graph)
    if name == "ch":
        return ContractionHierarchy(graph)
    if name == "phl":
        return HubLabeling(graph, order="ch")
    if name == "auto":
        return CompositeOracle(graph)
    if name == "gtree":
        return GTree(graph)
    raise ValueError(f"unknown oracle {name!r}")


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.core import KSpin
    from repro.lowerbound import AltLowerBounder
    from repro.persist import save_kspin

    if args.gr:
        from repro.graph import read_dimacs

        print(f"Loading DIMACS graph from {args.gr} ...")
        graph = read_dimacs(args.gr, args.co)
        if not args.documents:
            print("error: DIMACS input needs --documents (a Python dict "
                  "literal file mapping vertex -> keyword list)", file=sys.stderr)
            return 2
        import ast

        with open(args.documents) as handle:
            documents = ast.literal_eval(handle.read())
        from repro.text import KeywordDataset

        keywords = KeywordDataset(documents)
    else:
        from repro.datasets import load_dataset

        dataset = load_dataset(args.dataset)
        graph, keywords = dataset.graph, dataset.keywords
    print(f"Graph: {graph.num_vertices} vertices, {graph.num_edges} edges; "
          f"{keywords.num_objects} objects, {keywords.num_keywords} keywords")
    workers = args.workers
    if workers == 0:
        from repro.nvd.builder import available_cores

        workers = available_cores()
        print(f"Using all {workers} available cores for NVD construction")
    start = time.perf_counter()
    oracle = _build_oracle(args.oracle, graph)
    kspin = KSpin(
        graph,
        keywords,
        oracle=oracle,
        lower_bounder=AltLowerBounder(graph, num_landmarks=args.landmarks),
        rho=args.rho,
        workers=workers,
    )
    elapsed = time.perf_counter() - start
    written = save_kspin(kspin, args.out)
    print(f"Built in {elapsed:.1f}s; saved {written / 2**20:.2f} MB "
          f"to {args.out}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.api import Query
    from repro.persist import load_kspin

    kspin = load_kspin(args.index)
    keywords = list(args.keywords)
    if args.kind == "topk":
        query = Query(args.vertex, tuple(keywords), k=args.k, kind="topk")
        header = "score"
    else:
        mode = "and" if args.kind == "bknn-and" else "or"
        query = Query(args.vertex, tuple(keywords), k=args.k, kind="bknn", mode=mode)
        header = "distance"
    start = time.perf_counter()
    results = kspin.execute(query).pairs()
    elapsed = (time.perf_counter() - start) * 1000
    print(f"{args.kind} query from vertex {args.vertex} for {keywords} "
          f"({elapsed:.2f} ms):")
    if not results:
        print("  no matching objects")
    for rank, (obj, value) in enumerate(results, start=1):
        doc = sorted(kspin.index.document(obj))
        print(f"  #{rank}: vertex {obj}  {header}={value:.4f}  doc={doc[:6]}")
    stats = kspin.last_stats
    print(f"  cost: {stats.distance_computations} exact distances, "
          f"{stats.lower_bound_computations} lower bounds")
    if args.stats:
        print("  cost model (paper §5.1):")
        print(f"    iterations (kappa):      {stats.iterations}")
        print(f"    distance computations:   {stats.distance_computations}")
        print(f"    lower-bound evaluations: {stats.lower_bound_computations}")
        print(f"    heap insertions:         {stats.heap_insertions}")
        print(f"    heaps created:           {stats.heaps_created}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import Engine, QueryServer

    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    if args.cache_size < 0:
        print("error: --cache-size must be non-negative", file=sys.stderr)
        return 2
    if args.queue_size < 0:
        print("error: --queue-size must be non-negative", file=sys.stderr)
        return 2
    if args.index:
        from repro.persist import load_kspin

        print(f"Loading index from {args.index} ...")
        kspin = load_kspin(args.index)
        if args.seeding != "nvd":
            try:
                kspin.set_seeding(args.seeding)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    else:
        from repro.core import KSpin
        from repro.datasets import load_dataset
        from repro.lowerbound import AltLowerBounder

        print(f"Building {args.dataset} with the {args.oracle} oracle "
              f"({args.seeding} seeding) ...")
        dataset = load_dataset(args.dataset)
        try:
            kspin = KSpin(
                dataset.graph,
                dataset.keywords,
                oracle=_build_oracle(args.oracle, dataset.graph),
                lower_bounder=AltLowerBounder(
                    dataset.graph, num_landmarks=args.landmarks
                ),
                seeding=args.seeding,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    cluster = None
    sketch_routing = not args.no_sketch_routing
    if args.cluster > 0:
        from repro.serve import ClusterCoordinator

        print(f"Forking {args.cluster} worker processes "
              f"({args.placement} placement, sketch routing "
              f"{'on' if sketch_routing else 'off'}) ...")
        cluster = ClusterCoordinator(
            kspin,
            num_workers=args.cluster,
            placement=args.placement,
            cache_size=args.cache_size,
            snapshot_path=args.index or None,
            sketch_routing=sketch_routing,
        ).start()
        backend = cluster
    else:
        backend = Engine(
            kspin,
            cache_size=args.cache_size,
            enable_sketches=sketch_routing,
        )
    from repro.obs.slo import DEFAULT_WINDOWS, parse_objective, scaled_windows

    slo_objectives = None
    slo_windows = DEFAULT_WINDOWS
    if args.slo:
        try:
            slo_objectives = [parse_objective(spec) for spec in args.slo]
        except ValueError as exc:
            print(f"error: bad --slo spec: {exc}", file=sys.stderr)
            return 2
        slo_windows = scaled_windows(args.slo_window_scale)
    server = QueryServer(
        backend,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.queue_size,
        deadline=args.deadline,
        verbose=args.verbose,
        trace=args.trace,
        trace_buffer=args.trace_buffer,
        slow_query_threshold=args.slow_query_threshold,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        slo_objectives=slo_objectives,
        slo_windows=slo_windows,
        slo_interval=args.slo_interval,
        slo_shed_pressure=args.slo_shed_pressure,
    )
    if slo_objectives:
        names = ", ".join(obj.name for obj in slo_objectives)
        print(f"SLO burn-rate engine armed for: {names} "
              f"(window scale {args.slo_window_scale:g}, shed pressure "
              f"{args.slo_shed_pressure:g} while burning)")
    if args.rate_limit:
        print(f"Per-client rate limit: {args.rate_limit:g} req/s "
              f"(burst {server.rate_limiter.capacity:g}); clients keyed by "
              "X-Client-Id header, falling back to the peer address")
    print(f"Serving {kspin.graph.num_vertices}-vertex index on {server.url}")
    print("Endpoints: /v1/query /v1/bknn /v1/topk /v1/update /v1/healthz "
          "/v1/metrics /v1/debug/traces /v1/debug/events /v1/debug/profile"
          "  (Ctrl-C to stop)")
    if args.trace:
        print("Tracing enabled: span trees at /v1/debug/traces, "
              "Prometheus metrics at /v1/metrics?format=prometheus")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nShutting down.")
    finally:
        server.pool.close(wait=False)
        server.server_close()
        if cluster is not None:
            cluster.close()
    return 0


def _http_json(url: str, timeout: float = 10.0) -> dict:
    """GET ``url`` and decode the JSON envelope's ``result``."""
    import json
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout) as response:  # noqa: S310 - operator URL
        payload = json.loads(response.read().decode("utf-8"))
    if isinstance(payload, dict) and payload.get("ok") is False:
        error = payload.get("error") or {}
        raise RuntimeError(error.get("message", "server error"))
    if isinstance(payload, dict) and "result" in payload:
        return payload["result"]
    return payload


def _cmd_profile(args: argparse.Namespace) -> int:
    """Collect a collapsed flame graph from a server or a bench run."""
    from repro.obs.profile import PROFILER, render_collapsed

    if args.url:
        base = args.url.rstrip("/")
        _http_json(f"{base}/v1/debug/profile?action=start&hz={args.hz:g}")
        print(f"Sampling {base} at {args.hz:g} Hz for {args.duration:g}s ...")
        time.sleep(args.duration)
        payload = _http_json(f"{base}/v1/debug/profile?action=stop")
        folded = {
            str(stack): int(count)
            for stack, count in (payload.get("folded") or {}).items()
        }
        profilers = payload.get("profilers") or []
        samples = sum(int(p.get("samples", 0)) for p in profilers)
        print(f"{samples} samples across {len(profilers)} process(es), "
              f"{len(folded)} distinct stacks")
    else:
        from repro.api import Query
        from repro.serve.engine import Engine

        if args.index:
            from repro.persist import load_kspin

            kspin = load_kspin(args.index)
        else:
            from repro.core import KSpin
            from repro.datasets import load_dataset
            from repro.lowerbound import AltLowerBounder

            dataset = load_dataset(args.dataset)
            kspin = KSpin(
                dataset.graph,
                dataset.keywords,
                oracle=_build_oracle(args.oracle, dataset.graph),
                lower_bounder=AltLowerBounder(
                    dataset.graph, num_landmarks=args.landmarks
                ),
            )
        engine = Engine(kspin, cache_size=0)
        keywords = sorted(kspin.index.keywords())
        if not keywords:
            print("error: index has no keywords to query", file=sys.stderr)
            return 2
        vertices = kspin.graph.num_vertices
        print(f"Profiling {args.queries} BkNN queries on "
              f"{vertices} vertices at {args.hz:g} Hz ...")
        with PROFILER.record(hz=args.hz):
            for i in range(args.queries):
                vertex = (i * 131) % vertices
                keyword = keywords[i % len(keywords)]
                engine.execute(Query(vertex, (keyword,), k=args.k))
        snapshot = PROFILER.snapshot()
        folded = {
            f"{PROFILER.source};{stack}": count
            for stack, count in PROFILER.folded().items()
        }
        print(f"{snapshot['samples']} samples, "
              f"{snapshot['distinct_stacks']} distinct stacks")
        top = PROFILER.top(5)
        if top:
            print("hottest frames:")
            for row in top:
                print(f"  {row['share']:6.1%}  {row['frame']}")
    collapsed = render_collapsed(folded)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(collapsed)
        print(f"Collapsed flame graph written to {args.out} "
              f"(feed it to flamegraph.pl or speedscope)")
    else:
        print(collapsed, end="")
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    """Dump (or ``--follow``) a server's flight-recorder stream."""
    import json

    from repro.obs.events import format_event

    base = args.url.rstrip("/")
    since_ts = 0.0
    seen: set[tuple] = set()
    try:
        while True:
            query = f"{base}/v1/debug/events?since_ts={since_ts:.6f}"
            if args.limit:
                query += f"&limit={args.limit}"
            reply = _http_json(query)
            for event in reply.get("events") or []:
                key = (event.get("source"), event.get("seq"), event.get("ts"))
                if key in seen:
                    continue
                seen.add(key)
                if args.jsonl:
                    print(json.dumps(event, sort_keys=True))
                else:
                    print(format_event(event))
                # Lag the cursor one poll interval behind the newest
                # event: merged streams are only causally ordered per
                # source, so a strict high-watermark could skip a
                # slightly-older event from another worker.  The seen
                # set deduplicates the overlap.
                since_ts = max(since_ts, float(event.get("ts", 0.0)) - 2.0)
            if not args.follow:
                return 0
            if len(seen) > 50000:
                seen = set(sorted(seen, key=lambda k: k[2])[-10000:])
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Answer one query under a forced trace; print the span tree."""
    from repro.api import Query
    from repro.obs.trace import TRACER, format_trace
    from repro.serve.engine import Engine

    if args.index:
        from repro.persist import load_kspin

        kspin = load_kspin(args.index)
    else:
        from repro.core import KSpin
        from repro.datasets import load_dataset
        from repro.lowerbound import AltLowerBounder

        dataset = load_dataset(args.dataset)
        kspin = KSpin(
            dataset.graph,
            dataset.keywords,
            oracle=_build_oracle(args.oracle, dataset.graph),
            lower_bounder=AltLowerBounder(
                dataset.graph, num_landmarks=args.landmarks
            ),
        )
    keywords = tuple(args.keywords)
    if args.kind == "topk":
        query = Query(args.vertex, keywords, k=args.k, kind="topk")
    else:
        mode = "and" if args.kind == "bknn-and" else "or"
        query = Query(args.vertex, keywords, k=args.k, kind="bknn", mode=mode)
    # Cache disabled so the trace shows the real execution path, not a
    # cache hit; force=True traces even though the global tracer is off.
    engine = Engine(kspin, cache_size=0)
    start = time.perf_counter()
    with TRACER.trace(
        f"explain.{args.kind}",
        force=True,
        vertex=args.vertex,
        k=args.k,
        keywords=len(keywords),
    ) as root:
        result = engine.execute(query)
    wall_ms = (time.perf_counter() - start) * 1000.0
    print(f"{args.kind} query from vertex {args.vertex} for {list(keywords)}")
    print()
    print(format_trace(root.to_dict()))
    print()
    pairs = result.pairs()
    if not pairs:
        print("results: no matching objects")
    else:
        print("results:")
        for rank, (obj, value) in enumerate(pairs, start=1):
            print(f"  #{rank}: vertex {obj}  value={value:.4f}")
    stats = result.stats or {}
    print("cost model (paper 5.1):")
    print(f"  iterations (kappa):      {stats.get('iterations', 0)}")
    print(f"  distance computations:   {stats.get('distance_computations', 0)}")
    print(f"  lower-bound evaluations: {stats.get('lower_bound_computations', 0)}")
    print(f"  heap insertions:         {stats.get('heap_insertions', 0)}")
    print(f"  heaps created:           {stats.get('heaps_created', 0)}")
    print(f"wall time: {wall_ms:.3f} ms (traced {root.duration * 1000.0:.3f} ms)")
    return 0


def _cmd_sketch(args: argparse.Namespace) -> int:
    """Build the sketch registry for an index and print its report."""
    from repro.bench import print_table
    from repro.core.cost_model import selectivity_accuracy
    from repro.sketch import IndexSketches, LossyCounter

    if args.index:
        from repro.persist import load_kspin

        kspin = load_kspin(args.index)
    else:
        from repro.core import KSpin
        from repro.datasets import load_dataset
        from repro.lowerbound import AltLowerBounder

        dataset = load_dataset(args.dataset)
        kspin = KSpin(
            dataset.graph,
            dataset.keywords,
            oracle=_build_oracle(args.oracle, dataset.graph),
            lower_bounder=AltLowerBounder(
                dataset.graph, num_landmarks=args.landmarks
            ),
        )
    index = kspin.index
    sketches = IndexSketches.from_index(
        index,
        num_shards=args.shards,
        fp_rate=args.fp_rate,
        precision=args.precision,
    )

    snap = sketches.snapshot()
    print(f"Sketch registry: {snap['keywords']} keywords over "
          f"{snap['num_shards']} shard(s); HLL global object estimate "
          f"{snap['total_objects']} (precision {args.precision}, "
          f"standard error "
          f"{sketches.object_sketch.relative_error() * 100:.1f}%)")
    print_table(
        "Per-shard Bloom filters",
        ["Shard", "Keywords", "Fill ratio", "FP rate", "Saturated"],
        [
            [s["shard"], s["keywords"], f"{s['fill_ratio']:.4f}",
             f"{s['fp_rate']:.6f}", "yes" if s["saturated"] else "no"]
            for s in snap["shards"]
        ],
    )

    # HLL estimates next to the exact inverted sizes: the planner's view
    # versus ground truth, ranked by true size.
    true_sizes = {
        keyword: index.inverted_size(keyword) for keyword in index.keywords()
    }
    if args.keywords:
        chosen = list(dict.fromkeys(args.keywords))
    else:
        chosen = sorted(true_sizes, key=lambda kw: -true_sizes[kw])[: args.top]
    rows = []
    for keyword in chosen:
        true = true_sizes.get(keyword, 0)
        est = sketches.cardinality(keyword)
        err = abs(est - true) / true if true else (1.0 if est else 0.0)
        rows.append(
            [keyword, true, est, f"{err * 100:.1f}%",
             f"{sketches.selectivity(keyword):.5f}",
             sketches.shard_of(keyword)]
        )
    print_table(
        "HyperLogLog cardinality vs. true inverted size",
        ["Keyword", "True", "Estimate", "Error", "rho", "Shard"],
        rows,
    )
    mean_err = selectivity_accuracy(sketches, true_sizes)
    print(f"Mean relative cardinality error over all "
          f"{len(true_sizes)} keywords: {mean_err * 100:.2f}%")

    # Hot keywords: the lossy counter over the corpus keyword stream —
    # the same structure the cache admission gate runs over query
    # traffic, demonstrated here on document frequencies.
    heat = LossyCounter(epsilon=args.epsilon)
    for keyword in index.keywords():
        nvd = index.nvd(keyword)
        if nvd is None:
            continue
        for _ in nvd.live_objects():
            heat.add(keyword)
    print_table(
        f"Top-{args.top} hot keywords (lossy counter, "
        f"epsilon={args.epsilon:g}, error bound {heat.error_bound()})",
        ["Keyword", "Count (lower bound)"],
        [[keyword, count] for keyword, count in heat.top(args.top)],
    )
    return 0


def _default_lint_paths() -> list[str]:
    """Lint ``src/repro`` when run from a checkout, else the cwd."""
    import os

    for candidate in ("src/repro", "src"):
        if os.path.isdir(candidate):
            return [candidate]
    return ["."]


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the whole-program linter (KSP001–KSP011)."""
    import json
    from pathlib import Path

    from repro.analysis import (
        ALL_RULES,
        changed_files,
        lint_paths,
        ratchet,
        render_sarif,
        select_rules,
        write_baseline,
    )

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.title}")
        return 0
    try:
        rules = select_rules(args.select)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    changed: set | None = None
    if args.changed is not None:
        try:
            changed = changed_files(args.changed or "HEAD")
        except RuntimeError as error:
            print(f"warning: {error}; reporting all findings",
                  file=sys.stderr)
    paths = args.paths or _default_lint_paths()
    findings = lint_paths(paths, rules=rules, changed_only=changed)
    if args.format == "sarif":
        print(render_sarif(findings, rules, root=Path.cwd()))
    elif args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
    baseline_path = Path(args.baseline)
    if args.write_baseline:
        payload = write_baseline(baseline_path, findings, root=Path.cwd())
        print(
            f"repro lint: wrote {baseline_path} "
            f"(counts: {payload['counts']})",
            file=sys.stderr,
        )
        return 0
    if args.ratchet:
        result = ratchet(findings, baseline_path, root=Path.cwd())
        print(result.summary(), file=sys.stderr)
        return 0 if result.ok else 1
    if findings:
        if args.format == "text":
            print(f"repro lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    if args.format == "text":
        print("repro lint: clean")
    return 0


def _cmd_typecheck(args: argparse.Namespace) -> int:
    """Run the strict typing gate (mypy, pinned dev dependency)."""
    from repro.analysis import run_typecheck

    paths = args.paths or _default_lint_paths()
    return run_typecheck(paths, strict=not args.no_strict, require=args.require)


def _cmd_demo(args: argparse.Namespace) -> int:
    """A self-contained run of the paper's Figure-1 example queries."""
    from repro.core import KSpin
    from repro.distance import DijkstraOracle
    from repro.graph import RoadNetwork
    from repro.lowerbound import AltLowerBounder
    from repro.text import KeywordDataset

    graph = RoadNetwork(16)
    for r in range(4):
        for c in range(4):
            v = r * 4 + c
            graph.set_coordinates(v, c, r)
            if c + 1 < 4:
                graph.add_edge(v, v + 1, 1.0)
            if r + 1 < 4:
                graph.add_edge(v, v + 4, 1.0)
    dataset = KeywordDataset(
        {
            5: ["italian", "restaurant"],
            1: ["takeaway", "thai"],
            10: ["grocer"],
            11: ["bakery", "grocer"],
            6: ["thai", "restaurant"],
            2: ["thai", "restaurant"],
            14: ["thai", "grocer"],
            4: ["italian", "takeaway", "restaurant"],
        }
    )
    kspin = KSpin(
        graph,
        dataset,
        oracle=DijkstraOracle(graph),
        lower_bounder=AltLowerBounder(graph, num_landmarks=4),
        rho=3,
    )
    print("K-SPIN demo on the paper's Figure-1 world (q = vertex 0)")
    disjunctive = kspin.bknn(0, 1, ["restaurant", "takeaway"])
    print(f"  1NN for restaurant OR takeaway: {disjunctive}")
    conjunctive = kspin.bknn(0, 1, ["thai", "restaurant"], conjunctive=True)
    print(f"  1NN for thai AND restaurant:    {conjunctive}")
    top = kspin.top_k(0, 3, ["thai", "restaurant"])
    print(f"  top-3 by weighted distance:     {top}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="K-SPIN: spatial keyword queries on road networks",
        epilog=(
            "static analysis: `repro lint` runs the project-invariant "
            "linter (KSP001..., stdlib-only) and `repro typecheck` runs "
            "the strict typing gate (mypy --strict, dev dependency); "
            "both are CI gates — see docs/static-analysis.md"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("stats", help="print dataset ladder statistics")

    build = commands.add_parser("build", help="build and save a K-SPIN index")
    build.add_argument("--dataset", default="ME-S",
                       help="ladder dataset name (default ME-S)")
    build.add_argument("--gr", help="DIMACS .gr file (overrides --dataset)")
    build.add_argument("--co", help="DIMACS .co coordinates file")
    build.add_argument("--documents",
                       help="file holding a dict literal: vertex -> keywords")
    build.add_argument("--oracle", default="ch",
                       choices=["dijkstra", "bidijkstra", "ch", "phl", "gtree",
                                "auto"])
    build.add_argument("--rho", type=int, default=5)
    build.add_argument("--landmarks", type=int, default=16)
    build.add_argument("--workers", type=int, default=1,
                       help="processes for parallel NVD construction "
                            "(0 = all available cores)")
    build.add_argument("--out", required=True, help="output index path")

    query = commands.add_parser("query", help="query a saved index")
    query.add_argument("--index", required=True)
    query.add_argument("--vertex", type=int, required=True)
    query.add_argument("--keywords", nargs="+", required=True)
    query.add_argument("--kind", default="bknn",
                       choices=["bknn", "bknn-and", "topk"])
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--stats", action="store_true",
                       help="print the full §5.1 cost-model counters")

    serve = commands.add_parser(
        "serve", help="serve concurrent HTTP/JSON queries from memory"
    )
    source = serve.add_mutually_exclusive_group()
    source.add_argument("--index", help="saved index file (from `build`)")
    source.add_argument("--dataset", default="ME-S",
                        help="ladder dataset to build on boot (default ME-S)")
    serve.add_argument("--oracle", default="ch",
                       choices=["dijkstra", "bidijkstra", "ch", "phl", "gtree",
                                "auto"],
                       help="distance oracle when building from --dataset "
                            "(auto = SALT-style composite: CH + hub labels + "
                            "CSR batches, routed per query)")
    serve.add_argument("--seeding", default="nvd", choices=["nvd", "labels"],
                       help="heap seeding backend (labels needs a hub-label "
                            "oracle: --oracle phl/auto, or an index built "
                            "with one)")
    serve.add_argument("--landmarks", type=int, default=16)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--workers", type=int, default=4,
                       help="query worker threads")
    serve.add_argument("--cluster", type=int, default=0,
                       help="worker processes forked after index build "
                            "(0 = single-process thread engine)")
    serve.add_argument("--placement", default="replicate",
                       choices=["replicate", "shard-by-keyword"],
                       help="cluster placement policy")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="result-cache entries (0 disables caching)")
    serve.add_argument("--queue-size", type=int, default=64,
                       help="admitted requests allowed to wait (503 beyond)")
    serve.add_argument("--deadline", type=float, default=30.0,
                       help="per-request deadline in seconds (504 when missed)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")
    serve.add_argument("--trace", action="store_true",
                       help="trace every query (span trees at "
                            "/v1/debug/traces, per-stage histograms in "
                            "/v1/metrics)")
    serve.add_argument("--trace-buffer", type=int, default=64,
                       help="recent traces kept for /v1/debug/traces")
    serve.add_argument("--slow-query-threshold", type=float, default=None,
                       metavar="SECONDS",
                       help="traced queries at least this slow also land "
                            "in the slow-query log")
    serve.add_argument("--rate-limit", type=float, default=None,
                       metavar="REQ_PER_SEC",
                       help="per-client steady-state request rate enforced "
                            "with a leaky bucket; over-budget requests get "
                            "429 + Retry-After (default: unlimited)")
    serve.add_argument("--rate-burst", type=float, default=None,
                       metavar="REQUESTS",
                       help="per-client burst allowance "
                            "(default: 2 * --rate-limit)")
    serve.add_argument("--no-sketch-routing", action="store_true",
                       help="disable Bloom/HLL sketches (shard skipping, "
                            "cardinality planning, hot-keyword cache "
                            "admission)")
    serve.add_argument("--slo", action="append", metavar="SPEC",
                       help="declare a latency/error objective, e.g. "
                            "bknn-p99:latency:50ms:0.99 or "
                            "availability:errors:0.999 (repeatable); "
                            "burn-rate gauges land in /v1/metrics and "
                            "verbose /v1/healthz")
    serve.add_argument("--slo-window-scale", type=float, default=1.0,
                       metavar="FACTOR",
                       help="multiply the 5m/1h + 30m/6h burn-rate "
                            "windows by FACTOR (shrink for demos/tests)")
    serve.add_argument("--slo-interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="background SLO evaluation period; 0 relies "
                            "on /v1/metrics scrapes only")
    serve.add_argument("--slo-shed-pressure", type=float, default=0.5,
                       metavar="FACTOR",
                       help="admission-queue scale applied while any "
                            "objective is burning (default 0.5)")

    explain = commands.add_parser(
        "explain",
        help="trace one query and print its span tree with stage timings",
    )
    explain_source = explain.add_mutually_exclusive_group()
    explain_source.add_argument("--index", help="saved index file (from `build`)")
    explain_source.add_argument("--dataset", default="ME-S",
                                help="ladder dataset to build (default ME-S)")
    explain.add_argument("--oracle", default="ch",
                         choices=["dijkstra", "bidijkstra", "ch", "phl", "gtree",
                                  "auto"],
                         help="distance oracle when building from --dataset")
    explain.add_argument("--landmarks", type=int, default=16)
    explain.add_argument("--vertex", type=int, required=True)
    explain.add_argument("--keywords", nargs="+", required=True)
    explain.add_argument("--k", type=int, default=10)
    kind = explain.add_mutually_exclusive_group()
    kind.add_argument("--bknn", dest="kind", action="store_const",
                      const="bknn", help="disjunctive BkNN (default)")
    kind.add_argument("--bknn-and", dest="kind", action="store_const",
                      const="bknn-and", help="conjunctive BkNN")
    kind.add_argument("--topk", dest="kind", action="store_const",
                      const="topk", help="weighted top-k")
    explain.set_defaults(kind="bknn")

    sketch = commands.add_parser(
        "sketch",
        help="inspect the probabilistic-sketch registry for an index",
    )
    sketch_source = sketch.add_mutually_exclusive_group()
    sketch_source.add_argument("--index", help="saved index file (from `build`)")
    sketch_source.add_argument("--dataset", default="ME-S",
                               help="ladder dataset to build (default ME-S)")
    sketch.add_argument("--oracle", default="ch",
                        choices=["dijkstra", "bidijkstra", "ch", "phl", "gtree",
                                  "auto"],
                        help="distance oracle when building from --dataset")
    sketch.add_argument("--landmarks", type=int, default=16)
    sketch.add_argument("--shards", type=int, default=4,
                        help="shards to spread the Bloom filters over "
                             "(default 4)")
    sketch.add_argument("--fp-rate", type=float, default=0.01,
                        help="configured Bloom false-positive bound "
                             "(default 0.01)")
    sketch.add_argument("--precision", type=int, default=10,
                        help="HyperLogLog precision p; 2^p registers "
                             "(default 10)")
    sketch.add_argument("--epsilon", type=float, default=0.001,
                        help="lossy-counter error bound as a fraction of "
                             "the stream (default 0.001)")
    sketch.add_argument("--top", type=int, default=10,
                        help="rows in the cardinality and hot-keyword "
                             "tables (default 10)")
    sketch.add_argument("--keywords", nargs="+",
                        help="inspect these keywords instead of the "
                             "largest ones")

    lint = commands.add_parser(
        "lint",
        help="run the project-invariant linter (KSP rules, stdlib-only)",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: src/repro)")
    lint.add_argument("--select", nargs="+", metavar="CODE",
                      help="run only these rule codes (e.g. KSP002 KSP003)")
    lint.add_argument("--format", default="text",
                      choices=["text", "json", "sarif"],
                      help="report format (sarif: SARIF 2.1.0 for code "
                           "scanners)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.add_argument("--ratchet", action="store_true",
                      help="gate against the checked-in baseline: fail only "
                           "if any rule's finding count rises; auto-shrink "
                           "the baseline when counts fall")
    lint.add_argument("--baseline", default="analysis-baseline.json",
                      metavar="PATH",
                      help="baseline file for --ratchet/--write-baseline "
                           "(default: analysis-baseline.json)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="(re)create the baseline file from the current "
                           "findings and exit 0")
    lint.add_argument("--changed", nargs="?", const="HEAD", default=None,
                      metavar="REF",
                      help="analyse the whole program but report only "
                           "findings in files changed vs REF (default HEAD) "
                           "plus untracked files")

    typecheck = commands.add_parser(
        "typecheck",
        help="run the strict typing gate (mypy --strict over src/repro)",
    )
    typecheck.add_argument("paths", nargs="*",
                           help="files or directories (default: src/repro)")
    typecheck.add_argument("--no-strict", action="store_true",
                           help="drop the --strict flag (debugging only)")
    typecheck.add_argument("--require", action="store_true",
                           help="fail (exit 3) when mypy is not installed "
                                "instead of skipping — used by CI")

    profile = commands.add_parser(
        "profile",
        help="sampling profiler: attach to a server or profile a bench run",
    )
    profile.add_argument("--url", metavar="URL",
                         help="live server base URL (e.g. "
                              "http://127.0.0.1:8080); omitted = profile "
                              "a local query run instead")
    profile.add_argument("--duration", type=float, default=10.0,
                         help="seconds to sample an attached server "
                              "(default 10)")
    profile.add_argument("--hz", type=float, default=67.0,
                         help="sampling frequency (default 67 — co-prime "
                              "with common periodic work)")
    profile.add_argument("--out", metavar="PATH",
                         help="write collapsed stacks here instead of "
                              "stdout (flamegraph.pl / speedscope input)")
    profile_source = profile.add_mutually_exclusive_group()
    profile_source.add_argument("--index",
                                help="saved index for a local bench run")
    profile_source.add_argument("--dataset", default="ME-S",
                                help="ladder dataset for a local bench "
                                     "run (default ME-S)")
    profile.add_argument("--oracle", default="ch",
                         choices=["dijkstra", "bidijkstra", "ch", "phl",
                                  "gtree"],
                         help="distance oracle when building from "
                              "--dataset")
    profile.add_argument("--landmarks", type=int, default=16)
    profile.add_argument("--queries", type=int, default=2000,
                         help="BkNN queries for a local bench run "
                              "(default 2000)")
    profile.add_argument("--k", type=int, default=10)

    events = commands.add_parser(
        "events",
        help="dump or follow a server's flight-recorder event stream",
    )
    events.add_argument("--url", default="http://127.0.0.1:8080",
                        metavar="URL",
                        help="server base URL (default "
                             "http://127.0.0.1:8080)")
    events.add_argument("--follow", action="store_true",
                        help="poll forever, printing new events as they "
                             "arrive (Ctrl-C to stop)")
    events.add_argument("--interval", type=float, default=1.0,
                        help="poll period with --follow (default 1s)")
    events.add_argument("--limit", type=int, default=None,
                        help="cap events per fetch")
    events.add_argument("--jsonl", action="store_true",
                        help="emit raw JSON lines instead of the "
                             "human-readable rendering")

    commands.add_parser("demo", help="run the Figure-1 quickstart")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "stats": _cmd_stats,
        "build": _cmd_build,
        "query": _cmd_query,
        "serve": _cmd_serve,
        "explain": _cmd_explain,
        "profile": _cmd_profile,
        "events": _cmd_events,
        "sketch": _cmd_sketch,
        "lint": _cmd_lint,
        "typecheck": _cmd_typecheck,
        "demo": _cmd_demo,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
