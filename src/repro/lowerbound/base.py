"""Lower Bounding Module interface (paper §3, module 1).

A lower bounder returns a cheap value ``LB(u, v) <= d(u, v)`` for any two
vertices.  K-SPIN's on-demand inverted heaps rank candidate objects by
these bounds, so tightness translates directly into fewer exact network
distance computations.
"""

from __future__ import annotations

import abc


class LowerBounder(abc.ABC):
    """Cheap lower bound on the network distance between two vertices."""

    name: str = "lb"

    @abc.abstractmethod
    def lower_bound(self, u: int, v: int) -> float:
        """A value guaranteed to be ``<= d(u, v)``."""

    def lower_bounds_to_many(self, u: int, others: list[int]) -> list[float]:
        """``lower_bound(u, v)`` for every ``v`` in ``others``.

        The inverted heaps call this once per seed set / LazyReheap
        expansion instead of once per pair.  Subclasses with a
        vectorisable table (ALT) override it; this default is the
        scalar loop, so any bounder stays batch-compatible.
        """
        # Sanctioned per-item fallback: this loop *defines* the batch
        # semantics every vectorised override must match.
        return [self.lower_bound(u, v) for v in others]  # ksp: ignore[KSP007]

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Approximate index footprint in bytes."""


class ZeroLowerBounder(LowerBounder):
    """The trivial bound ``LB = 0``; useful as a degenerate baseline."""

    name = "zero"

    def lower_bound(self, u: int, v: int) -> float:
        return 0.0

    def memory_bytes(self) -> int:
        return 0
