"""Exact-distance "lower bounds" from a 2-hop labeling.

When a :class:`~repro.distance.hub_labeling.HubLabeling` index is
already paying its memory bill as the Network Distance Module, the
Lower Bounding Module can read the same labels and return the *exact*
distance as the bound — the tightest LB there is, for the price of one
label merge.  Every bound being exact, the inverted heaps pop
candidates in true distance order and the query processor's refinement
step confirms rather than filters.

The trade-off mirrors the paper's §3 discussion: ALT bounds are looser
but O(landmarks); a label merge is O(average label), typically a few
dozen entries on road networks.  ``lower_bounds_to_many`` amortises the
source side by densifying one hub vector for the whole batch.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distance.hub_labeling import HubLabeling
from repro.lowerbound.base import LowerBounder

INFINITY = math.inf


class HubLabelLowerBounder(LowerBounder):
    """``LB(u, v) = d(u, v)`` read straight off shared hub labels.

    Disconnected pairs get bound 0.0 (an LB must never exceed the true
    distance for *reachable* refinements, and the heaps treat finite
    bounds uniformly; 0.0 matches ALT's behaviour for unbounded pairs).
    """

    name = "PHL-LB"

    def __init__(self, labeling: HubLabeling) -> None:
        self._labeling = labeling

    def lower_bound(self, u: int, v: int) -> float:
        distance = self._labeling.distance(u, v)
        return distance if distance < INFINITY else 0.0

    def lower_bounds_to_many(self, u: int, others: list[int]) -> list[float]:
        """One dense hub vector for ``u``, one vectorised gather per
        ``v`` label row — the heap-seeding hot path."""
        if not others:
            return []
        labeling = self._labeling
        dense = labeling.dense_source_vector(u)
        out: list[float] = []
        for v in others:
            if v == u:
                out.append(0.0)
                continue
            hub_ids, hub_dists = labeling.label(int(v))
            if hub_ids.size == 0:
                out.append(0.0)
                continue
            bound = float(np.min(dense[hub_ids] + hub_dists))
            out.append(bound if bound < INFINITY else 0.0)
        return out

    def memory_bytes(self) -> int:
        return 0  # reads the distance oracle's labels; owns nothing
