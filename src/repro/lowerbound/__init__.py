"""Lower Bounding Module: ALT landmarks, Euclidean, composites."""

from repro.lowerbound.alt import AltLowerBounder
from repro.lowerbound.base import LowerBounder, ZeroLowerBounder
from repro.lowerbound.composite import CompositeLowerBounder
from repro.lowerbound.euclidean import EuclideanLowerBounder
from repro.lowerbound.hub_label import HubLabelLowerBounder

__all__ = [
    "AltLowerBounder",
    "CompositeLowerBounder",
    "EuclideanLowerBounder",
    "HubLabelLowerBounder",
    "LowerBounder",
    "ZeroLowerBounder",
]
