"""Coordinate-based lower bounds.

When edge weights are lengths (or lengths scaled by a known maximum
speed), the straight-line distance between vertex coordinates divided by
that speed lower-bounds the network distance.  This is the classic A*
potential and a cheap second heuristic for K-SPIN's Lower Bounding
Module, which may combine several heuristics and keep the tightest
(paper §3).
"""

from __future__ import annotations

import math

from repro.graph.road_network import RoadNetwork
from repro.lowerbound.base import LowerBounder


class EuclideanLowerBounder(LowerBounder):
    """``LB(u, v) = ||coord(u) - coord(v)|| / max_speed``.

    Parameters
    ----------
    graph:
        Road network with coordinates set.
    max_speed:
        Upper bound on (coordinate distance / edge weight) over all
        edges.  When omitted it is measured from the graph, which keeps
        the bound admissible by construction.
    """

    name = "Euclidean"

    def __init__(self, graph: RoadNetwork, max_speed: float | None = None) -> None:
        self._graph = graph
        if max_speed is None:
            max_speed = self._measure_max_speed(graph)
        if max_speed <= 0:
            raise ValueError("max_speed must be positive")
        self._max_speed = max_speed

    @staticmethod
    def _measure_max_speed(graph: RoadNetwork) -> float:
        """Largest straight-line-distance / weight ratio over edges."""
        best = 0.0
        for u, v, weight in graph.edges():
            (ux, uy), (vx, vy) = graph.coordinates(u), graph.coordinates(v)
            length = math.hypot(ux - vx, uy - vy)
            if length / weight > best:
                best = length / weight
        return best if best > 0 else 1.0

    def lower_bound(self, u: int, v: int) -> float:
        (ux, uy), (vx, vy) = self._graph.coordinates(u), self._graph.coordinates(v)
        return math.hypot(ux - vx, uy - vy) / self._max_speed

    def memory_bytes(self) -> int:
        return 0  # reuses the graph's coordinates
