"""Composite lower bounds: the max over several heuristics.

The paper's Lower Bounding Module "can consider multiple heuristics to
allow the module to return the tightest lower-bound network distance
overall" (§3).  The max of admissible bounds is itself admissible.
"""

from __future__ import annotations

from repro.lowerbound.base import LowerBounder


class CompositeLowerBounder(LowerBounder):
    """Tightest bound across a set of :class:`LowerBounder` heuristics."""

    name = "composite"

    def __init__(self, bounders: list[LowerBounder]) -> None:
        if not bounders:
            raise ValueError("need at least one lower bounder")
        self._bounders = list(bounders)
        self.name = "max(" + ",".join(b.name for b in bounders) + ")"

    def lower_bound(self, u: int, v: int) -> float:
        return max(b.lower_bound(u, v) for b in self._bounders)

    def memory_bytes(self) -> int:
        return sum(b.memory_bytes() for b in self._bounders)
