"""ALT landmark lower bounds (Goldberg & Harrelson, SODA 2005).

ALT pre-computes exact distances from ``m`` landmark vertices to every
vertex.  The triangle inequality then gives, for any pair ``(u, v)``::

    LB(u, v) = max over landmarks l of |d(l, u) - d(l, v)|

The paper combines K-SPIN with ALT because it provides effective bounds
on road networks [16]; ``m`` is "a small constant (typically 16)"
(paper §5.1).  Landmarks are chosen with the standard farthest-point
heuristic, which spreads them to the network periphery where they bound
best.

Distance tables are stored as numpy arrays: one O(1) vectorised max-abs-
difference per bound, and 8 bytes per entry for the index-size studies.
"""

from __future__ import annotations

import random

import numpy as np

from repro.graph.dijkstra import dijkstra_all
from repro.graph.road_network import RoadNetwork
from repro.lowerbound.base import LowerBounder


class AltLowerBounder(LowerBounder):
    """Landmark (ALT) lower bounds via the triangle inequality.

    Parameters
    ----------
    graph:
        Road network to index.
    num_landmarks:
        Landmark count ``m`` (paper default 16).
    seed:
        Seed for the random initial landmark of farthest-point selection.

    Examples
    --------
    >>> from repro.graph import perturbed_grid_network, dijkstra_distance
    >>> g = perturbed_grid_network(5, 5, seed=0)
    >>> alt = AltLowerBounder(g, num_landmarks=4)
    >>> alt.lower_bound(0, 24) <= dijkstra_distance(g, 0, 24)
    True
    """

    name = "ALT"

    def __init__(self, graph: RoadNetwork, num_landmarks: int = 16, seed: int = 0) -> None:
        if num_landmarks < 1:
            raise ValueError("need at least one landmark")
        num_landmarks = min(num_landmarks, graph.num_vertices)
        # Selection already runs one SSSP per chosen landmark; keep those
        # rows instead of recomputing the whole table afterwards.
        self.landmarks, rows = self._select_landmarks(graph, num_landmarks, seed)
        table = np.asarray(rows, dtype=np.float64)
        # Disconnected vertices would poison the arithmetic with inf - inf.
        table[~np.isfinite(table)] = np.nan
        self._table = table

    @staticmethod
    def _select_landmarks(
        graph: RoadNetwork, count: int, seed: int
    ) -> tuple[list[int], list[list[float]]]:
        """Farthest-point landmark selection, returning the distance rows.

        Each landmark's full SSSP drives the next farthest-point choice
        *and* becomes its table row, so the table costs ``m + 1``
        searches total instead of ``2m``.
        """
        rng = random.Random(seed)
        first = rng.randrange(graph.num_vertices)
        # The first *chosen* landmark is the vertex farthest from a random
        # start, pushing it to the periphery.
        distances = dijkstra_all(graph, first)
        landmarks = [max(graph.vertices(), key=lambda v: _finite(distances[v]))]
        rows = [dijkstra_all(graph, landmarks[0])]
        min_distance = [_finite(d) for d in rows[0]]
        while len(landmarks) < count:
            candidate = max(graph.vertices(), key=lambda v: min_distance[v])
            if candidate in landmarks:  # graph smaller than landmark count
                break
            landmarks.append(candidate)
            rows.append(dijkstra_all(graph, candidate))
            for v, d in enumerate(rows[-1]):
                d = _finite(d)
                if d < min_distance[v]:
                    min_distance[v] = d
        return landmarks, rows

    def lower_bound(self, u: int, v: int) -> float:
        """``max_l |d(l,u) - d(l,v)|`` — always ``<= d(u, v)``."""
        if u == v:
            return 0.0
        difference = np.abs(self._table[:, u] - self._table[:, v])
        finite = difference[~np.isnan(difference)]
        if finite.size == 0:
            return 0.0
        return float(finite.max())

    def lower_bounds_to_many(self, u: int, others: list[int]) -> list[float]:
        """Vectorised ``lower_bound(u, v)`` for many ``v`` at once.

        This is the heap-seeding hot path: one fancy-indexed slice and
        one reduction for the whole batch, instead of a numpy round-trip
        per pair.
        """
        if not others:
            return []
        column = self._table[:, u][:, None]
        differences = np.abs(self._table[:, others] - column)
        # nan entries mark landmark rows that cannot bound this pair.
        bounds = np.max(np.nan_to_num(differences, nan=0.0), axis=0)
        return list(bounds.tolist())

    def lower_bounds_many(
        self, sources: list[int], targets: list[int]
    ) -> list[float]:
        """Pairwise ``lower_bound(s_i, t_i)`` for a whole batch at once.

        The batched-execution counterpart of :meth:`lower_bounds_to_many`:
        one fancy-indexed gather over the landmark table covers every
        pair in a batch of queries (one numpy dispatch instead of one
        per query), bit-identical to the scalar form.
        """
        if len(sources) != len(targets):
            raise ValueError(
                f"pairwise call needs equal lengths, got "
                f"{len(sources)} sources and {len(targets)} targets"
            )
        if not sources:
            return []
        differences = np.abs(self._table[:, sources] - self._table[:, targets])
        bounds = np.max(np.nan_to_num(differences, nan=0.0), axis=0)
        out = list(bounds.tolist())
        # The scalar form returns exactly 0.0 for u == v; the vector
        # arithmetic agrees (|x - x| = 0), but keep NaN-only columns
        # consistent with lower_bound's 0.0 fallback explicitly.
        return [0.0 if s == t else b for s, t, b in zip(sources, targets, out)]

    def memory_bytes(self) -> int:
        return int(self._table.nbytes)


def _finite(value: float) -> float:
    return value if value < float("inf") else 0.0
