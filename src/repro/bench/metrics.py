"""Measurement primitives shared by the benchmark harness."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, Iterable


@dataclass
class TimingSummary:
    """Aggregate of a timed batch of queries."""

    count: int
    total_seconds: float
    mean_seconds: float
    median_seconds: float

    @property
    def queries_per_second(self) -> float:
        """Throughput — Table 1's headline metric."""
        if self.total_seconds <= 0:
            return float("inf")
        return self.count / self.total_seconds

    @property
    def mean_milliseconds(self) -> float:
        return self.mean_seconds * 1000.0


def time_batch(run: Callable[[], object], repetitions: int) -> TimingSummary:
    """Time ``repetitions`` invocations of a no-arg callable."""
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        run()
        samples.append(time.perf_counter() - start)
    return TimingSummary(
        count=repetitions,
        total_seconds=sum(samples),
        mean_seconds=statistics.fmean(samples),
        median_seconds=statistics.median(samples),
    )


def time_queries(runs: Iterable[Callable[[], object]]) -> TimingSummary:
    """Time a heterogeneous batch (one callable per query)."""
    samples = []
    for run in runs:
        start = time.perf_counter()
        run()
        samples.append(time.perf_counter() - start)
    if not samples:
        raise ValueError("no queries to time")
    return TimingSummary(
        count=len(samples),
        total_seconds=sum(samples),
        mean_seconds=statistics.fmean(samples),
        median_seconds=statistics.median(samples),
    )


def megabytes(num_bytes: int) -> float:
    """Bytes -> MB with two decimals of useful precision."""
    return num_bytes / (1024.0 * 1024.0)
