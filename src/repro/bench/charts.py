"""ASCII chart rendering for benchmark figure output.

Benchmarks print paper-figure *series* as tables; for quick visual
inspection in a terminal this module renders the same series as
horizontal bar charts and log-scale multi-series line summaries —
useful because the repository ships without plotting libraries.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def bar_chart(
    title: str,
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Render labeled values as a horizontal ASCII bar chart.

    >>> print(bar_chart("t", {"a": 2.0, "b": 1.0}, width=4))  # doctest: +SKIP
    """
    if not values:
        raise ValueError("nothing to chart")
    if width < 1:
        raise ValueError("width must be positive")
    longest_label = max(len(label) for label in values)
    biggest = max(values.values())
    lines = [f"{title}"]
    for label, value in values.items():
        if biggest > 0:
            bar = "#" * max(1 if value > 0 else 0, round(width * value / biggest))
        else:
            bar = ""
        rendered = f"{value:.3g}{unit}"
        lines.append(f"  {label.ljust(longest_label)} |{bar.ljust(width)} {rendered}")
    return "\n".join(lines)


def log_series_chart(
    title: str,
    x_labels: Sequence[object],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
) -> str:
    """Render multiple positive series on a shared log-scale y axis.

    Mirrors the paper's log-scale query-time figures: each series gets a
    marker character; columns correspond to x positions.
    """
    if not series:
        raise ValueError("nothing to chart")
    if height < 3 or width < len(x_labels):
        raise ValueError("chart too small for the data")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("every series must have one value per x label")
    positives = [
        value for values in series.values() for value in values if value > 0
    ]
    if not positives:
        raise ValueError("log chart needs positive values")
    low = math.log10(min(positives))
    high = math.log10(max(positives))
    if high - low < 1e-12:
        high = low + 1.0
    markers = "ox+*#@%&"
    grid = [[" "] * width for _ in range(height)]
    column_step = width // max(1, len(x_labels))
    for series_index, (name, values) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        for x_index, value in enumerate(values):
            if value <= 0:
                continue
            rank = (math.log10(value) - low) / (high - low)
            row = (height - 1) - round(rank * (height - 1))
            column = min(width - 1, x_index * column_step + column_step // 2)
            grid[row][column] = marker
    lines = [title]
    top_value = 10**high
    bottom_value = 10**low
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = f"{top_value:8.3g} |"
        elif row_index == height - 1:
            prefix = f"{bottom_value:8.3g} |"
        else:
            prefix = "         |"
        lines.append(prefix + "".join(row))
    axis = "         +" + "-" * width
    lines.append(axis)
    label_row = [" "] * width
    for x_index, label in enumerate(x_labels):
        text = str(label)
        column = min(width - len(text), x_index * column_step + column_step // 2)
        for offset, ch in enumerate(text):
            if 0 <= column + offset < width:
                label_row[column + offset] = ch
    lines.append("          " + "".join(label_row))
    legend = "  legend: " + "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)
