"""Benchmark harness: method suites, timing, tables, result recording."""

from repro.bench.charts import bar_chart, log_series_chart
from repro.bench.harness import (
    FSFBS_DATASETS,
    MethodSuite,
    build_methods,
    get_dataset,
    print_table,
    reset_suite_cache,
    save_result,
)
from repro.bench.metrics import TimingSummary, megabytes, time_batch, time_queries

__all__ = [
    "FSFBS_DATASETS",
    "MethodSuite",
    "bar_chart",
    "log_series_chart",
    "TimingSummary",
    "build_methods",
    "get_dataset",
    "megabytes",
    "print_table",
    "reset_suite_cache",
    "save_result",
    "time_batch",
    "time_queries",
]
