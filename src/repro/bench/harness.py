"""The benchmark harness: method suites, tables, and result recording.

Every benchmark in ``benchmarks/`` builds its competitors through
:func:`build_methods`, which constructs and caches (per process) the
full method suite for a ladder dataset:

* **KS-CH / KS-PHL / KS-GT** — K-SPIN with Contraction Hierarchies,
  hub labeling ("PHL"), and G-tree distance oracles (shared ALT index);
* **G-tree / Gtree-Opt** — the keyword-aggregated baselines;
* **ROAD** and **FS-FBS** — the remaining competitors (FS-FBS only on
  the two smallest datasets, matching the paper's observation that its
  index cannot be built at scale — enforced by a build-cost guard);
* **Expansion** — the index-free Dijkstra reference.

Printing helpers emit the paper-style rows/series, and
:func:`save_result` records every experiment's payload as JSON under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro.baselines.expansion import NetworkExpansion
from repro.baselines.fsfbs import FsFbs
from repro.baselines.gtree_sk import GTreeSpatialKeyword
from repro.baselines.road import Road
from repro.core.framework import KSpin
from repro.datasets.synthetic import SyntheticDataset, load_dataset
from repro.datasets.workloads import WorkloadGenerator
from repro.distance.ch import ContractionHierarchy
from repro.distance.gtree import GTree
from repro.distance.hub_labeling import HubLabeling
from repro.lowerbound.alt import AltLowerBounder

#: FS-FBS is only constructed on these rungs (paper: DE and ME only).
FSFBS_DATASETS = ("DE-S", "ME-S")

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "benchmarks", "results")


@dataclass
class MethodSuite:
    """Every competitor built over one dataset, plus build accounting."""

    dataset: SyntheticDataset
    alt: AltLowerBounder
    ch: ContractionHierarchy
    hub: HubLabeling
    gtree: GTree
    ks_ch: KSpin
    ks_phl: KSpin
    ks_gt: KSpin
    gtree_sk: GTreeSpatialKeyword
    gtree_opt: GTreeSpatialKeyword
    road: Road
    expansion: NetworkExpansion
    fsfbs: FsFbs | None
    build_seconds: dict[str, float] = field(default_factory=dict)

    def workload(self, seed: int = 0) -> WorkloadGenerator:
        """A workload generator over this suite's dataset."""
        return WorkloadGenerator(
            self.dataset.graph, self.dataset.keywords, seed=seed
        )

    def index_sizes(self) -> dict[str, int]:
        """Index footprint per method, in bytes (Figure 14(a) rows)."""
        kspin_core = self.ks_ch.memory_bytes()  # keyword index + ALT
        return {
            "Input": self.dataset.graph.memory_bytes()
            + self.dataset.keywords.memory_bytes(),
            "KS-CH": kspin_core + self.ch.memory_bytes(),
            "KS-PHL": kspin_core + self.hub.memory_bytes(),
            "KS-GT": kspin_core + self.gtree.memory_bytes(),
            "G-tree": self.gtree_sk.memory_bytes(),
            "ROAD": self.road.memory_bytes(),
            "FS-FBS": self.fsfbs.memory_bytes() if self.fsfbs else 0,
        }


_SUITES: dict[str, MethodSuite] = {}
_DATASETS: dict[str, SyntheticDataset] = {}


def get_dataset(name: str) -> SyntheticDataset:
    """Process-cached dataset generation."""
    if name not in _DATASETS:
        _DATASETS[name] = load_dataset(name)
    return _DATASETS[name]


def build_methods(dataset_name: str, rho: int = 5) -> MethodSuite:
    """Build (or fetch from cache) the full method suite for a dataset."""
    if dataset_name in _SUITES:
        return _SUITES[dataset_name]
    dataset = get_dataset(dataset_name)
    graph, keywords = dataset.graph, dataset.keywords
    build_seconds: dict[str, float] = {}

    def timed(label: str, make):
        start = time.perf_counter()
        value = make()
        build_seconds[label] = time.perf_counter() - start
        return value

    alt = timed("ALT", lambda: AltLowerBounder(graph, num_landmarks=16))
    ch = timed("CH", lambda: ContractionHierarchy(graph))
    importance = sorted(graph.vertices(), key=lambda v: -ch.rank[v])
    hub = timed("PHL", lambda: HubLabeling(graph, order=importance))
    gtree = timed("G-tree index", lambda: GTree(graph, leaf_size=64))
    ks_ch = timed(
        "KS-CH",
        lambda: KSpin(graph, keywords, oracle=ch, lower_bounder=alt, rho=rho),
    )
    # The keyword-separated index is oracle-independent; share it so the
    # suite builds once (exactly the paper's flexibility claim).
    ks_phl = _clone_kspin(ks_ch, hub)
    ks_gt = _clone_kspin(ks_ch, gtree)
    build_seconds["KS-PHL"] = build_seconds["KS-CH"]
    build_seconds["KS-GT"] = build_seconds["KS-CH"]
    gtree_sk = timed(
        "G-tree SK", lambda: GTreeSpatialKeyword(graph, keywords, gtree=gtree)
    )
    gtree_opt = timed(
        "Gtree-Opt",
        lambda: GTreeSpatialKeyword(graph, keywords, gtree=gtree, optimized=True),
    )
    road = timed("ROAD", lambda: Road(graph, keywords))
    expansion = NetworkExpansion(graph, keywords)
    fsfbs = None
    if dataset_name in FSFBS_DATASETS:
        fsfbs = timed(
            "FS-FBS", lambda: FsFbs(graph, keywords, labeling=hub)
        )
    suite = MethodSuite(
        dataset=dataset,
        alt=alt,
        ch=ch,
        hub=hub,
        gtree=gtree,
        ks_ch=ks_ch,
        ks_phl=ks_phl,
        ks_gt=ks_gt,
        gtree_sk=gtree_sk,
        gtree_opt=gtree_opt,
        road=road,
        expansion=expansion,
        fsfbs=fsfbs,
        build_seconds=build_seconds,
    )
    _SUITES[dataset_name] = suite
    return suite


def _clone_kspin(base: KSpin, oracle) -> KSpin:
    """A KSpin sharing ``base``'s keyword index but a different oracle.

    Avoids rebuilding identical keyword-separated indexes per variant.
    """
    from repro.core.heap_generator import HeapGenerator
    from repro.core.query_processor import QueryProcessor

    clone = KSpin.__new__(KSpin)
    clone.graph = base.graph
    clone.dataset = base.dataset
    clone.oracle = oracle
    clone.lower_bounder = base.lower_bounder
    clone.relevance = base.relevance
    clone.index = base.index
    clone.heap_generator = HeapGenerator(base.lower_bounder)
    clone.processor = QueryProcessor(
        base.graph, base.index, base.relevance, oracle, clone.heap_generator
    )
    return clone


def reset_suite_cache() -> None:
    """Drop cached suites (tests use this; benchmarks keep the cache)."""
    _SUITES.clear()
    _DATASETS.clear()


# ----------------------------------------------------------------------
# Output helpers
# ----------------------------------------------------------------------
def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print an aligned, paper-style table."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    print(f"\n== {title} ==")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rendered:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def _render(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)


def save_result(experiment_id: str, payload: dict) -> str:
    """Record an experiment's data as JSON for EXPERIMENTS.md."""
    directory = os.path.abspath(RESULTS_DIR)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{experiment_id}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path
