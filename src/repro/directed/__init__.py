"""Directed road networks: the paper's §2 extension, end to end."""

from repro.directed.alt import DirectedAltLowerBounder
from repro.directed.dijkstra import (
    directed_distance,
    forward_dijkstra_all,
    reverse_dijkstra_all,
    reverse_multi_source,
)
from repro.directed.graph import (
    DirectedRoadNetwork,
    from_undirected,
    with_one_way_streets,
)
from repro.directed.kspin import (
    DirectedDijkstraOracle,
    DirectedKeywordIndex,
    DirectedKSpin,
)
from repro.directed.nvd import DirectedApproximateNVD

__all__ = [
    "DirectedAltLowerBounder",
    "DirectedApproximateNVD",
    "DirectedDijkstraOracle",
    "DirectedKSpin",
    "DirectedKeywordIndex",
    "DirectedRoadNetwork",
    "directed_distance",
    "forward_dijkstra_all",
    "from_undirected",
    "reverse_dijkstra_all",
    "reverse_multi_source",
    "with_one_way_streets",
]
