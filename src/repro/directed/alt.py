"""Directed ALT lower bounds.

With asymmetric distances each landmark needs two tables:
``d(l -> v)`` (forward) and ``d(v -> l)`` (backward).  Both triangle
inequalities give admissible bounds on ``d(u -> v)``::

    d(u -> v) >= d(u -> l) - d(v -> l)     (via the backward table)
    d(u -> v) >= d(l -> v) - d(l -> u)     (via the forward table)

The bound is the maximum over both forms and all landmarks.
"""

from __future__ import annotations

import random

import numpy as np

from repro.directed.dijkstra import forward_dijkstra_all, reverse_dijkstra_all
from repro.directed.graph import DirectedRoadNetwork
from repro.lowerbound.base import LowerBounder


class DirectedAltLowerBounder(LowerBounder):
    """Landmark lower bounds for directed networks.

    Parameters
    ----------
    graph:
        The directed road network.
    num_landmarks:
        Landmark count; each costs a forward and a reverse Dijkstra.
    seed:
        Seed for the farthest-point selection's random start.
    """

    name = "ALT-directed"

    def __init__(
        self, graph: DirectedRoadNetwork, num_landmarks: int = 16, seed: int = 0
    ) -> None:
        if num_landmarks < 1:
            raise ValueError("need at least one landmark")
        num_landmarks = min(num_landmarks, graph.num_vertices)
        self.landmarks = self._select(graph, num_landmarks, seed)
        n = graph.num_vertices
        forward = np.empty((len(self.landmarks), n))
        backward = np.empty((len(self.landmarks), n))
        for row, landmark in enumerate(self.landmarks):
            forward[row, :] = forward_dijkstra_all(graph, landmark)
            backward[row, :] = reverse_dijkstra_all(graph, landmark)
        forward[~np.isfinite(forward)] = np.nan
        backward[~np.isfinite(backward)] = np.nan
        self._forward = forward  # d(l -> v)
        self._backward = backward  # d(v -> l)

    @staticmethod
    def _select(
        graph: DirectedRoadNetwork, count: int, seed: int
    ) -> list[int]:
        """Farthest-point selection over the symmetrised distance."""
        rng = random.Random(seed)
        start = rng.randrange(graph.num_vertices)
        first = forward_dijkstra_all(graph, start)
        landmarks = [
            max(
                graph.vertices(),
                key=lambda v: first[v] if first[v] < float("inf") else 0.0,
            )
        ]
        minimum = [
            d if d < float("inf") else 0.0
            for d in forward_dijkstra_all(graph, landmarks[0])
        ]
        while len(landmarks) < count:
            candidate = max(graph.vertices(), key=lambda v: minimum[v])
            if candidate in landmarks:
                break
            landmarks.append(candidate)
            for v, d in enumerate(forward_dijkstra_all(graph, candidate)):
                d = d if d < float("inf") else 0.0
                if d < minimum[v]:
                    minimum[v] = d
        return landmarks

    def lower_bound(self, u: int, v: int) -> float:
        """An admissible bound on the *directed* distance ``d(u -> v)``."""
        if u == v:
            return 0.0
        via_backward = self._backward[:, u] - self._backward[:, v]
        via_forward = self._forward[:, v] - self._forward[:, u]
        candidates = np.concatenate([via_backward, via_forward])
        finite = candidates[~np.isnan(candidates)]
        if finite.size == 0:
            return 0.0
        best = float(finite.max())
        return best if best > 0.0 else 0.0

    def memory_bytes(self) -> int:
        return int(self._forward.nbytes + self._backward.nbytes)
