"""K-SPIN over directed road networks.

The framework's modularity pays off here: the *same* query processor
(Algorithms 1-3, pseudo lower bounds and all) runs unchanged, because
its three dependencies are interface-level:

* the graph only supplies query-vertex coordinates,
* the keyword index supplies per-keyword NVDs with
  ``seed_objects`` / ``neighbors`` / ``is_deleted``, and
* the oracle supplies exact (now directional) distances.

This module provides the directed implementations of the latter two and
a :class:`DirectedKSpin` facade mirroring :class:`repro.core.KSpin`'s
query surface.  Updates: deletions are lazy tombstones; insertions
rebuild the affected keyword's diagram (no directed Theorem-2 pruning —
see the module docs of :mod:`repro.directed.nvd`).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.heap_generator import HeapGenerator
from repro.core.query_processor import QueryProcessor, QueryStats
from repro.directed.alt import DirectedAltLowerBounder
from repro.directed.dijkstra import directed_distance
from repro.directed.graph import DirectedRoadNetwork
from repro.directed.nvd import DirectedApproximateNVD
from repro.distance.base import DistanceOracle
from repro.lowerbound.base import LowerBounder
from repro.text.documents import KeywordDataset
from repro.text.relevance import RelevanceModel


class DirectedDijkstraOracle(DistanceOracle):
    """Exact directional distances by early-terminating Dijkstra."""

    name = "Dijkstra-directed"

    def __init__(self, graph: DirectedRoadNetwork) -> None:
        super().__init__()
        self._graph = graph

    def distance(self, source: int, target: int) -> float:
        self.query_count += 1
        return directed_distance(self._graph, source, target)

    def memory_bytes(self) -> int:
        return 0


class DirectedKeywordIndex:
    """Per-keyword directed APX-NVDs with the core index's read API."""

    def __init__(
        self,
        graph: DirectedRoadNetwork,
        dataset: KeywordDataset,
        rho: int = 5,
    ) -> None:
        self._graph = graph
        self._dataset = dataset
        self.rho = rho
        self._nvds: dict[str, DirectedApproximateNVD] = {
            keyword: DirectedApproximateNVD.build(
                graph, list(dataset.inverted_list(keyword)), rho=rho, keyword=keyword
            )
            for keyword in dataset.keywords()
        }

    def nvd(self, keyword: str) -> DirectedApproximateNVD | None:
        return self._nvds.get(keyword)

    def keywords(self) -> tuple[str, ...]:
        return tuple(sorted(self._nvds))

    def inverted_size(self, keyword: str) -> int:
        nvd = self._nvds.get(keyword)
        return len(nvd.live_objects()) if nvd else 0

    def has_keyword(self, obj: int, keyword: str) -> bool:
        if not self._dataset.contains(obj, keyword):
            return False
        nvd = self._nvds.get(keyword)
        return nvd is not None and not nvd.is_deleted(obj)

    def is_modified(self, obj: int) -> bool:
        return False  # documents are immutable; deletion hides whole objects

    def document(self, obj: int) -> dict[str, int]:
        if not self._dataset.is_object(obj):
            return {}
        return self._dataset.document(obj)

    def delete_object(self, obj: int) -> None:
        """Tombstone ``obj`` in every keyword diagram listing it."""
        keywords = list(self._dataset.document(obj)) if self._dataset.is_object(obj) else []
        if not keywords:
            raise KeyError(f"object {obj} has no document")
        for keyword in keywords:
            nvd = self._nvds.get(keyword)
            if nvd is not None and obj in nvd.objects:
                nvd.delete_object(obj)

    def memory_bytes(self) -> int:
        return sum(nvd.memory_bytes() for nvd in self._nvds.values())


class DirectedKSpin:
    """K-SPIN facade for directed road networks.

    Supports the paper's full query surface (disjunctive/conjunctive
    BkNN and top-k with pseudo lower bounds), with distances measured
    *from the query to the object* along directed arcs.
    """

    def __init__(
        self,
        graph: DirectedRoadNetwork,
        dataset: KeywordDataset,
        oracle: DistanceOracle | None = None,
        lower_bounder: LowerBounder | None = None,
        rho: int = 5,
    ) -> None:
        self.graph = graph
        self.dataset = dataset
        self.oracle = oracle or DirectedDijkstraOracle(graph)
        self.lower_bounder = lower_bounder or DirectedAltLowerBounder(graph)
        self.relevance = RelevanceModel(dataset)
        self.index = DirectedKeywordIndex(graph, dataset, rho=rho)
        self.heap_generator = HeapGenerator(self.lower_bounder)
        # The undirected query processor runs unchanged: all its graph /
        # index / oracle interactions are interface-level.
        self.processor = QueryProcessor(
            graph,  # type: ignore[arg-type] - duck-typed: coordinates()
            self.index,  # type: ignore[arg-type] - duck-typed read API
            self.relevance,
            self.oracle,
            self.heap_generator,
        )

    def execute(self, query):
        """Answer one :class:`repro.api.Query` (unified surface).

        Same contract as :meth:`repro.core.framework.KSpin.execute`,
        with distances measured along directed arcs.
        """
        from repro.api import (
            QueryResult,
            ensure_supported,
            hits_from_pairs,
            stats_to_dict,
        )

        ensure_supported(query, "DirectedKSpin")
        from repro.obs.trace import span as trace_span

        with trace_span("directed.execute", kind=query.kind):
            if query.kind == "bknn":
                pairs = self.processor.bknn(
                    query.vertex,
                    query.k,
                    list(query.keywords),
                    conjunctive=query.conjunctive,
                )
            else:
                pairs = self.processor.top_k(
                    query.vertex, query.k, list(query.keywords)
                )
        return QueryResult(
            hits=hits_from_pairs(query.kind, pairs),
            stats=stats_to_dict(self.processor.last_stats),
        )

    def bknn(
        self,
        query: int,
        k: int,
        keywords: Sequence[str],
        conjunctive: bool = False,
    ) -> list[tuple[int, float]]:
        """Directed Boolean kNN by ``d(q -> o)``."""
        return self.processor.bknn(query, k, keywords, conjunctive=conjunctive)

    def top_k(
        self, query: int, k: int, keywords: Sequence[str]
    ) -> list[tuple[int, float]]:
        """Directed top-k by ``d(q -> o) / TR(psi, o)``."""
        return self.processor.top_k(query, k, keywords)

    def boolean_bknn(
        self, query: int, k: int, groups: Sequence[Sequence[str]]
    ) -> list[tuple[int, float]]:
        """Directed BkNN under a mixed AND/OR expression in CNF."""
        from repro.core.boolean_query import BooleanExpression, boolean_bknn

        return boolean_bknn(self.processor, query, k, BooleanExpression(groups))

    def delete_object(self, obj: int) -> None:
        """Tombstone a POI; queries stay exact."""
        self.index.delete_object(obj)

    @property
    def last_stats(self) -> QueryStats:
        return self.processor.last_stats

    def memory_bytes(self) -> int:
        return self.index.memory_bytes() + self.lower_bounder.memory_bytes()
