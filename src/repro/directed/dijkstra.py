"""Directed shortest-path primitives.

Forward searches relax outgoing arcs and compute ``d(source -> .)``;
reverse searches relax incoming arcs and compute ``d(. -> target)``.
The directed NVD needs the reverse multi-source variant: every vertex
labelled with the object it can reach most cheaply.

Like :mod:`repro.graph.dijkstra`, every public function dispatches to
the CSR kernels when they are active: forward searches run over
``graph.csr_out()`` and reverse searches run *forward* over the
transposed ``graph.csr_in()`` view, which is the same trick the python
code plays with ``in_edges``.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

from repro import kernels
from repro.directed.graph import DirectedRoadNetwork

INFINITY = math.inf


def forward_dijkstra_all(graph: DirectedRoadNetwork, source: int) -> list[float]:
    """``d(source -> v)`` for every vertex."""
    if kernels.enabled():
        csr = graph.csr_out()
        workspace = kernels.get_workspace(csr.num_vertices)
        return list(kernels.sssp(csr, source, workspace).tolist())
    return _dijkstra(graph, source, reverse=False)


def reverse_dijkstra_all(graph: DirectedRoadNetwork, target: int) -> list[float]:
    """``d(v -> target)`` for every vertex (search over incoming arcs)."""
    if kernels.enabled():
        # No workspace memo here: the forward memo slot would thrash
        # against it, and reverse full-scans are not on the query path.
        return list(kernels.sssp(graph.csr_in(), target).tolist())
    return _dijkstra(graph, target, reverse=True)


def _dijkstra(graph: DirectedRoadNetwork, root: int, reverse: bool) -> list[float]:
    distances = [INFINITY] * graph.num_vertices
    distances[root] = 0.0
    heap: list[tuple[float, int]] = [(0.0, root)]
    edges = graph.in_edges if reverse else graph.out_edges
    while heap:
        dist_u, u = heapq.heappop(heap)
        if dist_u > distances[u]:
            continue
        for v, weight in edges(u):
            candidate = dist_u + weight
            if candidate < distances[v]:
                distances[v] = candidate
                heapq.heappush(heap, (candidate, v))
    return distances


def directed_distance(graph: DirectedRoadNetwork, source: int, target: int) -> float:
    """Point-to-point ``d(source -> target)`` with early termination."""
    if source == target:
        return 0.0
    if kernels.enabled():
        csr = graph.csr_out()
        workspace = kernels.get_workspace(csr.num_vertices)
        return kernels.p2p(csr, source, target, workspace)
    distances = [INFINITY] * graph.num_vertices
    distances[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    out_edges = graph.out_edges
    while heap:
        dist_u, u = heapq.heappop(heap)
        if u == target:
            return dist_u
        if dist_u > distances[u]:
            continue
        for v, weight in out_edges(u):
            candidate = dist_u + weight
            if candidate < distances[v]:
                distances[v] = candidate
                heapq.heappush(heap, (candidate, v))
    return INFINITY


def reverse_multi_source(
    graph: DirectedRoadNetwork, objects: Sequence[int]
) -> tuple[list[float], list[int]]:
    """Directed NVD labelling: nearest *reachable* object per vertex.

    Returns ``(distances, owners)`` with ``owners[v]`` the object
    minimising ``d(v -> o)`` (ties broken deterministically) and ``-1``
    where no object is reachable.  One multi-source Dijkstra over the
    reverse graph.
    """
    if not objects:
        raise ValueError("need at least one object")
    if kernels.enabled():
        dist, owner = kernels.multi_source(graph.csr_in(), objects)
        return list(dist.tolist()), list(owner.tolist())
    distances = [INFINITY] * graph.num_vertices
    owners = [-1] * graph.num_vertices
    heap: list[tuple[float, int, int]] = []
    for o in sorted(set(objects)):
        distances[o] = 0.0
        owners[o] = o
        heap.append((0.0, o, o))
    heapq.heapify(heap)
    in_edges = graph.in_edges
    while heap:
        dist_u, u, owner = heapq.heappop(heap)
        if dist_u > distances[u]:
            continue
        for v, weight in in_edges(u):
            candidate = dist_u + weight
            if candidate < distances[v]:
                distances[v] = candidate
                owners[v] = owner
                heapq.heappush(heap, (candidate, v, owner))
    return distances, owners
