"""Directed road networks (paper §2 extension).

The paper models undirected edges "to make exposition simpler" and
notes the framework extends to other cases.  Real road networks have
one-way streets; this subpackage provides that extension end to end:
directed graphs, forward/reverse searches, directed ALT bounds,
directed NVDs, and a :class:`~repro.directed.kspin.DirectedKSpin`
facade that reuses the core query processor unchanged.

Distances are directional: ``d(u -> v)`` generally differs from
``d(v -> u)``.  For POI search the relevant quantity is the travel
distance *from the query to the object*, so every index here is built
around ``d(q -> o)``.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.graph.road_network import RoadNetwork, RoadNetworkError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.kernels.csr import CSRGraph


class DirectedRoadNetwork:
    """A directed, weighted road network with vertex coordinates.

    Examples
    --------
    >>> g = DirectedRoadNetwork(2)
    >>> g.add_edge(0, 1, 2.0)
    >>> g.out_edges(0)
    [(1, 2.0)]
    >>> g.out_edges(1)
    []
    """

    __slots__ = ("_out", "_in", "_coordinates", "_num_edges", "_csr_out", "_csr_in")

    def __init__(self, num_vertices: int) -> None:
        if num_vertices <= 0:
            raise RoadNetworkError("a road network needs at least one vertex")
        self._out: list[list[tuple[int, float]]] = [[] for _ in range(num_vertices)]
        self._in: list[list[tuple[int, float]]] = [[] for _ in range(num_vertices)]
        self._coordinates: list[tuple[float, float]] = [
            (0.0, 0.0) for _ in range(num_vertices)
        ]
        self._num_edges = 0
        self._csr_out: CSRGraph | None = None
        self._csr_in: CSRGraph | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add the directed edge ``u -> v``; parallel arcs keep the minimum."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise RoadNetworkError(f"self-loop on vertex {u} is not allowed")
        if weight <= 0:
            raise RoadNetworkError(
                f"edge ({u} -> {v}) must have positive weight, got {weight!r}"
            )
        existing = self.edge_weight(u, v)
        if existing is not None:
            if weight < existing:
                self._replace(u, v, weight)
            return
        self._out[u].append((v, float(weight)))
        self._in[v].append((u, float(weight)))
        self._num_edges += 1
        self._csr_out = None
        self._csr_in = None

    def _replace(self, u: int, v: int, weight: float) -> None:
        for adjacency, key in ((self._out[u], v), (self._in[v], u)):
            for index, (other, _) in enumerate(adjacency):
                if other == key:
                    adjacency[index] = (key, float(weight))
                    break
        self._csr_out = None
        self._csr_in = None

    def add_two_way(self, u: int, v: int, weight: float) -> None:
        """Convenience: both directions with the same weight."""
        self.add_edge(u, v, weight)
        self.add_edge(v, u, weight)

    def set_coordinates(self, v: int, x: float, y: float) -> None:
        """Attach planar coordinates (quadtree point location)."""
        self._check_vertex(v)
        self._coordinates[v] = (float(x), float(y))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Number of directed arcs."""
        return self._num_edges

    def vertices(self) -> range:
        return range(len(self._out))

    def out_edges(self, v: int) -> Sequence[tuple[int, float]]:
        """Arcs leaving ``v``: ``(head, weight)`` pairs."""
        self._check_vertex(v)
        return self._out[v]

    def in_edges(self, v: int) -> Sequence[tuple[int, float]]:
        """Arcs entering ``v``: ``(tail, weight)`` pairs."""
        self._check_vertex(v)
        return self._in[v]

    # The core query processor asks the graph for coordinates; exposing
    # the same accessors as RoadNetwork lets it run unmodified.
    def coordinates(self, v: int) -> tuple[float, float]:
        self._check_vertex(v)
        return self._coordinates[v]

    def neighbors(self, v: int) -> Sequence[tuple[int, float]]:
        """Alias of :meth:`out_edges` (duck-typing RoadNetwork)."""
        return self.out_edges(v)

    def edge_weight(self, u: int, v: int) -> float | None:
        """Weight of arc ``u -> v``, or ``None``."""
        self._check_vertex(u)
        self._check_vertex(v)
        for head, weight in self._out[u]:
            if head == v:
                return weight
        return None

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """All directed arcs ``(u, v, weight)``."""
        for u, adjacency in enumerate(self._out):
            for v, weight in adjacency:
                yield u, v, weight

    def is_strongly_connected(self) -> bool:
        """Whether every vertex reaches every other along directed arcs."""
        return (
            len(self._reachable(0, self._out)) == self.num_vertices
            and len(self._reachable(0, self._in)) == self.num_vertices
        )

    def _reachable(
        self, start: int, adjacency: list[list[tuple[int, float]]]
    ) -> set[int]:
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v, _ in adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def csr_out(self) -> CSRGraph:
        """Cached CSR view over outgoing arcs (forward searches)."""
        if self._csr_out is None:
            from repro.kernels.csr import CSRGraph

            self._csr_out = CSRGraph.from_directed(self, reverse=False)
        return self._csr_out

    def csr_in(self) -> CSRGraph:
        """Cached CSR view over incoming arcs (reverse searches run
        forward over this transposed view)."""
        if self._csr_in is None:
            from repro.kernels.csr import CSRGraph

            self._csr_in = CSRGraph.from_directed(self, reverse=True)
        return self._csr_in

    # CSR caches are derived data; rebuild after unpickling.
    def __getstate__(self) -> dict[str, object]:
        return {
            "out": self._out,
            "in": self._in,
            "coordinates": self._coordinates,
            "num_edges": self._num_edges,
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        self._out = state["out"]  # type: ignore[assignment]
        self._in = state["in"]  # type: ignore[assignment]
        self._coordinates = state["coordinates"]  # type: ignore[assignment]
        self._num_edges = int(state["num_edges"])  # type: ignore[arg-type]
        self._csr_out = None
        self._csr_in = None

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._out):
            raise RoadNetworkError(
                f"vertex {v} out of range [0, {len(self._out)})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirectedRoadNetwork(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )


def from_undirected(graph: RoadNetwork) -> DirectedRoadNetwork:
    """Lift an undirected network to a directed one (arcs both ways)."""
    directed = DirectedRoadNetwork(graph.num_vertices)
    for v in graph.vertices():
        directed.set_coordinates(v, *graph.coordinates(v))
    for u, v, weight in graph.edges():
        directed.add_two_way(u, v, weight)
    return directed


def with_one_way_streets(
    graph: RoadNetwork, fraction: float = 0.3, seed: int = 0
) -> DirectedRoadNetwork:
    """A strongly connected directed network with one-way streets.

    Starts from the undirected network, turns ``fraction`` of its edges
    into single-direction arcs (random orientation), then restores
    strong connectivity by re-adding a one-way street's reverse arc only
    when its head cannot currently reach its tail.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rng = random.Random(seed)
    directed = DirectedRoadNetwork(graph.num_vertices)
    for v in graph.vertices():
        directed.set_coordinates(v, *graph.coordinates(v))
    one_way: list[tuple[int, int, float]] = []
    for u, v, weight in graph.edges():
        if rng.random() < fraction:
            if rng.random() < 0.5:
                u, v = v, u
            directed.add_edge(u, v, weight)
            one_way.append((u, v, weight))
        else:
            directed.add_two_way(u, v, weight)
    rng.shuffle(one_way)
    for u, v, weight in one_way:
        # The arc u -> v exists; the street only hurts connectivity if
        # v cannot get back to u some other way.
        if u not in directed._reachable(v, directed._out):
            directed.add_edge(v, u, weight)
    assert directed.is_strongly_connected()
    return directed
