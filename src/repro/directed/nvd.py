"""Directed ρ-approximate network Voronoi diagrams.

The directed NVD assigns every vertex the object it can *reach* most
cheaply: ``owner(v) = argmin_o d(v -> o)``, computed with one
multi-source Dijkstra over the reverse graph.  Property 2 carries over:
on the shortest path ``q -> o_k``, let ``w`` be the last vertex owned
by some ``o_j != o_k``; the crossing arc makes their cells adjacent and
``d(q -> o_j) <= d(q -> w) + d(w -> o_j) <= d(q -> o_k)``, so the k-th
nearest object is adjacent to a closer one — exactly what Algorithm 4
needs.  Cell adjacency therefore comes from arcs whose endpoints have
different owners (direction ignored for the adjacency relation).

The container is the same Morton quadtree as the undirected case, so
Definition 1's ≤ ρ-candidates-including-the-1NN guarantee and
Theorem 1's lazy-heap correctness transfer unchanged.  Deletions are
tombstoned exactly as in §6.2; insertion affected-sets (Theorem 2's
MaxRadius argument is symmetric-distance specific) are future work —
:meth:`rebuild` covers insertions.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.directed.dijkstra import reverse_multi_source
from repro.directed.graph import DirectedRoadNetwork
from repro.nvd.quadtree import MortonQuadtree


class DirectedApproximateNVD:
    """Per-keyword APX-NVD over a directed road network.

    Duck-types the query-side interface of
    :class:`repro.nvd.approximate.ApproximateNVD` (``seed_objects``,
    ``neighbors``, ``is_deleted``, ``live_objects``) so the core heap
    generator and query processor run on it unchanged.
    """

    def __init__(
        self,
        rho: int,
        objects: Iterable[int],
        adjacency: dict[int, set[int]],
        quadtree: MortonQuadtree | None,
        keyword: str | None = None,
        build_seconds: float = 0.0,
    ) -> None:
        self.rho = rho
        self.objects: set[int] = set(objects)
        self.adjacency = adjacency
        self.quadtree = quadtree
        self.keyword = keyword
        self.build_seconds = build_seconds
        self.deleted: set[int] = set()
        self.pending_updates = 0

    @classmethod
    def build(
        cls,
        graph: DirectedRoadNetwork,
        objects: Iterable[int],
        rho: int = 5,
        keyword: str | None = None,
    ) -> "DirectedApproximateNVD":
        """Build from one reverse multi-source Dijkstra (Observation 1
        still skips the diagram for keywords with <= rho objects)."""
        if rho < 1:
            raise ValueError("rho must be at least 1")
        start = time.perf_counter()
        object_list = sorted(set(objects))
        if not object_list:
            raise ValueError("an APX-NVD needs at least one object")
        if len(object_list) <= rho:
            return cls(
                rho=rho,
                objects=object_list,
                adjacency={o: set() for o in object_list},
                quadtree=None,
                keyword=keyword,
                build_seconds=time.perf_counter() - start,
            )
        _, owners = reverse_multi_source(graph, object_list)
        adjacency: dict[int, set[int]] = {o: set() for o in object_list}
        for u, v, _ in graph.edges():
            owner_u, owner_v = owners[u], owners[v]
            if owner_u != owner_v and owner_u >= 0 and owner_v >= 0:
                adjacency[owner_u].add(owner_v)
                adjacency[owner_v].add(owner_u)
        colors = {v: owners[v] for v in graph.vertices() if owners[v] >= 0}
        points = {v: graph.coordinates(v) for v in colors}
        quadtree = MortonQuadtree(points, colors, rho)
        return cls(
            rho=rho,
            objects=object_list,
            adjacency=adjacency,
            quadtree=quadtree,
            keyword=keyword,
            build_seconds=time.perf_counter() - start,
        )

    @property
    def is_small(self) -> bool:
        return self.quadtree is None

    def live_objects(self) -> set[int]:
        return self.objects - self.deleted

    # ------------------------------------------------------------------
    # Query-side interface (shared with the undirected APX-NVD)
    # ------------------------------------------------------------------
    def seed_objects(self, coordinates: tuple[float, float]) -> list[int]:
        """<= rho candidates guaranteed to include the true directed 1NN."""
        if self.quadtree is None:
            return sorted(self.objects)
        return sorted(self.quadtree.candidates(*coordinates))

    def neighbors(self, obj: int) -> list[int]:
        return sorted(self.adjacency.get(obj, ()))

    def is_deleted(self, obj: int) -> bool:
        return obj in self.deleted

    def delete_object(self, obj: int) -> None:
        """Tombstone; expansion still routes through the cell (§6.2)."""
        if obj not in self.objects:
            raise KeyError(f"object {obj} is not in this NVD")
        if obj not in self.deleted:
            self.deleted.add(obj)
            self.pending_updates += 1

    def rebuild(self, graph: DirectedRoadNetwork) -> "DirectedApproximateNVD":
        """Fresh diagram over the live objects (covers insertions too —
        add to ``objects`` first, then rebuild)."""
        live = self.live_objects()
        if not live:
            raise ValueError("cannot rebuild an NVD with no live objects")
        return DirectedApproximateNVD.build(
            graph, live, rho=self.rho, keyword=self.keyword
        )

    def memory_bytes(self) -> int:
        edges = sum(len(a) for a in self.adjacency.values())
        base = edges * 16 + len(self.objects) * 8
        if self.quadtree is not None:
            base += self.quadtree.memory_bytes()
        return base
