"""ROAD baseline: Route Overlay and Association Directory (Lee et al.).

ROAD hierarchically partitions the road network into *Rnets*.  Each Rnet
pre-computes *shortcuts* — shortest border-to-border distances within
the subnet (the Route Overlay).  An *Association Directory* records, per
keyword, which Rnets contain objects carrying it.  A query is a Dijkstra
expansion from the query vertex that, on reaching a border of an Rnet
containing no relevant object, *bypasses* the whole subnet through its
shortcuts instead of expanding inside.

Applied to top-k spatial keyword queries [3], ROAD inherits the keyword
aggregation weakness: the directory is aggregated per subnet, so subnets
with low textual relevance still get expanded or bypassed vertex by
vertex, and the expansion visits everything closer than the k-th result.
The paper reports ROAD supports top-k but not Boolean kNN (Table 1 shows
an X) — we match that surface: :meth:`top_k` is the query interface, and
a plain keyword-filtered :meth:`knn` is provided for the directory's
native predicate search.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.api import (
    Query,
    QueryResult,
    ensure_supported,
    hits_from_pairs,
    warn_deprecated,
)
from repro.graph.dijkstra import dijkstra_within
from repro.graph.road_network import RoadNetwork
from repro.text.documents import KeywordDataset
from repro.text.relevance import RelevanceModel

INFINITY = math.inf


@dataclass
class Rnet:
    """One subnet of the ROAD hierarchy."""

    index: int
    parent: int
    depth: int
    vertices: set[int]
    children: list[int] = field(default_factory=list)
    borders: list[int] = field(default_factory=list)
    #: shortcuts[border] = [(other_border, within-subnet distance)]
    shortcuts: dict[int, list[tuple[int, float]]] = field(default_factory=dict)


class Road:
    """ROAD-style spatial keyword search framework.

    Parameters
    ----------
    graph, dataset:
        Road network and keyword dataset.
    fanout:
        Children per hierarchy level.
    leaf_size:
        Rnet size below which partitioning stops.
    """

    name = "ROAD"

    def __init__(
        self,
        graph: RoadNetwork,
        dataset: KeywordDataset,
        fanout: int = 4,
        leaf_size: int = 64,
    ) -> None:
        if fanout < 2 or leaf_size < 2:
            raise ValueError("fanout and leaf_size must be at least 2")
        self._graph = graph
        self._dataset = dataset
        self._relevance = RelevanceModel(dataset)
        self.rnets: list[Rnet] = []
        self._build_hierarchy(fanout, leaf_size)
        self._build_route_overlay()
        # Association directory: keyword -> set of Rnet ids whose subnet
        # contains an object with the keyword.
        self._directory: dict[str, set[int]] = {}
        self._build_directory()
        # border -> Rnets (largest first) for which it is a border.
        self._border_rnets: dict[int, list[int]] = {}
        for rnet in self.rnets:
            for b in rnet.borders:
                self._border_rnets.setdefault(b, []).append(rnet.index)
        for memberships in self._border_rnets.values():
            memberships.sort(key=lambda i: -len(self.rnets[i].vertices))
        self.bypasses_taken = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_hierarchy(self, fanout: int, leaf_size: int) -> None:
        root = Rnet(
            index=0, parent=-1, depth=0, vertices=set(self._graph.vertices())
        )
        self.rnets.append(root)
        pending = [0]
        while pending:
            index = pending.pop()
            rnet = self.rnets[index]
            if len(rnet.vertices) <= leaf_size:
                continue
            for part in self._partition(sorted(rnet.vertices), fanout):
                child = Rnet(
                    index=len(self.rnets),
                    parent=index,
                    depth=rnet.depth + 1,
                    vertices=set(part),
                )
                self.rnets.append(child)
                rnet.children.append(child.index)
                pending.append(child.index)

    def _partition(self, vertices: list[int], parts: int) -> list[list[int]]:
        groups = [vertices]
        axis = 0
        coordinates = self._graph.coordinates
        while len(groups) < parts:
            groups.sort(key=len, reverse=True)
            biggest = groups.pop(0)
            biggest.sort(key=lambda v: coordinates(v)[axis])
            middle = len(biggest) // 2
            groups.extend([biggest[:middle], biggest[middle:]])
            axis = 1 - axis
        return [g for g in groups if g]

    def _build_route_overlay(self) -> None:
        neighbors = self._graph.neighbors
        for rnet in self.rnets:
            if rnet.index == 0:
                continue  # the whole network needs no shortcuts
            rnet.borders = [
                v
                for v in rnet.vertices
                if any(u not in rnet.vertices for u, _ in neighbors(v))
            ]
            adjacency = self._graph.subgraph_adjacency(rnet.vertices)
            border_set = set(rnet.borders)
            for b in rnet.borders:
                distances = dijkstra_within(adjacency, b)
                rnet.shortcuts[b] = [
                    (other, distances[other])
                    for other in border_set
                    if other != b and other in distances
                ]

    def _build_directory(self) -> None:
        # Every Rnet stores its full vertex set, so one containment pass
        # over objects x hierarchy fills the directory.
        for o in self._dataset.objects():
            containing = [r.index for r in self.rnets if o in r.vertices]
            for keyword in self._dataset.document(o):
                self._directory.setdefault(keyword, set()).update(containing)

    # ------------------------------------------------------------------
    # Core search: keyword-aware Dijkstra with subnet bypassing
    # ------------------------------------------------------------------
    def _search(
        self,
        query: int,
        keywords: Sequence[str],
        on_settle: Callable[[int, float], bool],
    ) -> None:
        """Expand from ``query``; call ``on_settle(v, d)`` per settled
        vertex until it returns False.  Subnets with no object carrying
        any query keyword are crossed via shortcuts."""
        relevant_rnets: set[int] = set()
        for t in keywords:
            relevant_rnets |= self._directory.get(t, set())
        distances: dict[int, float] = {query: 0.0}
        heap: list[tuple[float, int]] = [(0.0, query)]
        settled: set[int] = set()
        neighbors = self._graph.neighbors
        while heap:
            dist_v, v = heapq.heappop(heap)
            if v in settled:
                continue
            settled.add(v)
            if not on_settle(v, dist_v):
                return
            bypass = self._bypassable_rnet(v, query, relevant_rnets)
            if bypass is not None:
                self.bypasses_taken += 1
                inside = self.rnets[bypass].vertices
                for u, d in self.rnets[bypass].shortcuts.get(v, ()):
                    candidate = dist_v + d
                    if candidate < distances.get(u, INFINITY):
                        distances[u] = candidate
                        heapq.heappush(heap, (candidate, u))
                edges = (
                    (u, w) for u, w in neighbors(v) if u not in inside
                )
            else:
                edges = iter(neighbors(v))
            for u, w in edges:
                candidate = dist_v + w
                if candidate < distances.get(u, INFINITY):
                    distances[u] = candidate
                    heapq.heappush(heap, (candidate, u))

    def _bypassable_rnet(
        self, v: int, query: int, relevant: set[int]
    ) -> int | None:
        """The largest Rnet bordered by ``v`` that the search may skip."""
        for index in self._border_rnets.get(v, ()):
            rnet = self.rnets[index]
            if index not in relevant and query not in rnet.vertices:
                return index
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _knn(
        self,
        query: int,
        k: int,
        keywords: Sequence[str],
        conjunctive: bool = False,
    ) -> list[tuple[int, float]]:
        """k nearest objects matching the keyword predicate.

        ROAD's native object search: the directory prunes by *any*
        keyword, so conjunctive filtering happens per-object on settle
        (the aggregation false-positive cost)."""
        keywords = list(dict.fromkeys(keywords))
        if k < 1:
            raise ValueError("k must be positive")
        if not keywords:
            raise ValueError("need at least one query keyword")
        matcher = (
            self._dataset.contains_all if conjunctive else self._dataset.contains_any
        )
        results: list[tuple[int, float]] = []

        def on_settle(v: int, d: float) -> bool:
            if matcher(v, keywords):
                results.append((v, d))
            return len(results) < k

        self._search(query, keywords, on_settle)
        return results

    def _top_k(
        self, query: int, k: int, keywords: Sequence[str]
    ) -> list[tuple[int, float]]:
        """Top-k by weighted distance via bounded network expansion.

        Settles vertices in distance order; since ``score = d / TR`` and
        ``TR <= TR_max``, expansion stops once ``d / TR_max`` exceeds the
        current k-th score."""
        keywords = list(dict.fromkeys(keywords))
        if k < 1:
            raise ValueError("k must be positive")
        if not keywords:
            raise ValueError("need at least one query keyword")
        query_impacts = self._relevance.query_impacts(keywords)
        ceiling = self._relevance.max_textual_relevance(keywords, query_impacts)
        if ceiling <= 0.0:
            return []
        results: list[tuple[float, int]] = []  # max-heap by negation

        def threshold() -> float:
            return -results[0][0] if len(results) == k else INFINITY

        def on_settle(v: int, d: float) -> bool:
            if d / ceiling >= threshold():
                return False
            relevance = self._relevance.textual_relevance(
                keywords, v, query_impacts
            )
            if relevance > 0.0:
                score = d / relevance
                if score < threshold():
                    if len(results) == k:
                        heapq.heapreplace(results, (-score, v))
                    else:
                        heapq.heappush(results, (-score, v))
            return True

        self._search(query, keywords, on_settle)
        ordered = sorted((-negative, o) for negative, o in results)
        return [(o, s) for s, o in ordered]

    def execute(self, query: Query) -> QueryResult:
        """Answer one :class:`repro.api.Query` (the canonical entry point).

        ``kind="bknn"`` maps to ROAD's native keyword-predicate kNN
        search (the directory-pruned expansion); ``kind="topk"`` to the
        bounded-expansion weighted-distance search.
        """
        ensure_supported(query, self.name)
        if query.kind == "bknn":
            pairs = self._knn(
                query.vertex,
                query.k,
                list(query.keywords),
                conjunctive=query.conjunctive,
            )
        else:
            pairs = self._top_k(query.vertex, query.k, list(query.keywords))
        return QueryResult(hits=hits_from_pairs(query.kind, pairs))

    def execute_many(self, queries: Sequence[Query]) -> list[QueryResult]:
        """Answer a batch of queries in order (sequential reference path)."""
        from repro.api import execute_many_sequential

        return execute_many_sequential(self, queries)

    def knn(
        self,
        query: int,
        k: int,
        keywords: Sequence[str],
        conjunctive: bool = False,
    ) -> list[tuple[int, float]]:
        """Deprecated shim for :meth:`execute` with ``kind="bknn"``."""
        warn_deprecated("Road.knn(...)", "Road.execute(Query(...))")
        return self._knn(query, k, keywords, conjunctive=conjunctive)

    def top_k(
        self, query: int, k: int, keywords: Sequence[str]
    ) -> list[tuple[int, float]]:
        """Deprecated shim for :meth:`execute` with ``kind="topk"``."""
        warn_deprecated("Road.top_k(...)", "Road.execute(Query(...))")
        return self._top_k(query, k, keywords)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def reset_counters(self) -> None:
        self.bypasses_taken = 0

    def memory_bytes(self) -> int:
        """Route overlay shortcuts plus association directory."""
        shortcuts = sum(
            len(entries)
            for rnet in self.rnets
            for entries in rnet.shortcuts.values()
        )
        directory = sum(len(rnets) for rnets in self._directory.values())
        return shortcuts * 24 + directory * 12 + len(self.rnets) * 120
