"""Network expansion baseline: index-free Dijkstra with keyword filters.

The classic approach the paper excludes from its main comparison for
being "orders of magnitude slower" (§7.1) — included here both as a
correctness oracle and so the benchmark tables can verify that claim.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

import numpy as np

from repro import kernels
from repro.api import (
    Query,
    QueryResult,
    ensure_supported,
    hits_from_pairs,
    warn_deprecated,
)
from repro.graph.dijkstra import network_expansion_knn
from repro.graph.road_network import RoadNetwork
from repro.text.documents import KeywordDataset
from repro.text.relevance import RelevanceModel

INFINITY = math.inf


class NetworkExpansion:
    """Index-free spatial keyword queries by incremental expansion."""

    name = "Expansion"

    def __init__(self, graph: RoadNetwork, dataset: KeywordDataset) -> None:
        self._graph = graph
        self._dataset = dataset
        self._relevance = RelevanceModel(dataset)

    def _bknn(
        self,
        query: int,
        k: int,
        keywords: Sequence[str],
        conjunctive: bool = False,
    ) -> list[tuple[int, float]]:
        """Boolean kNN by expanding until k matches settle."""
        keywords = list(dict.fromkeys(keywords))
        if k < 1:
            raise ValueError("k must be positive")
        if not keywords:
            raise ValueError("need at least one query keyword")
        matcher = (
            self._dataset.contains_all if conjunctive else self._dataset.contains_any
        )
        return network_expansion_knn(
            self._graph, query, k, lambda v: matcher(v, keywords)
        )

    def _top_k(
        self, query: int, k: int, keywords: Sequence[str]
    ) -> list[tuple[int, float]]:
        """Top-k by expansion with the ``d / TR_max`` stopping rule."""
        keywords = list(dict.fromkeys(keywords))
        if k < 1:
            raise ValueError("k must be positive")
        if not keywords:
            raise ValueError("need at least one query keyword")
        query_impacts = self._relevance.query_impacts(keywords)
        ceiling = self._relevance.max_textual_relevance(keywords, query_impacts)
        if ceiling <= 0.0:
            return []
        results: list[tuple[float, int]] = []  # max-heap by negation

        def threshold() -> float:
            return -results[0][0] if len(results) == k else INFINITY

        def score_vertex(v: int, dist_v: float) -> bool:
            """Score one settled vertex; False once ``d / TR_max`` proves
            no later vertex can enter the result heap."""
            if dist_v / ceiling >= threshold():
                return False
            relevance = self._relevance.textual_relevance(
                keywords, v, query_impacts
            )
            if relevance > 0.0:
                score = dist_v / relevance
                if score < threshold():
                    if len(results) == k:
                        heapq.heapreplace(results, (-score, v))
                    else:
                        heapq.heappush(results, (-score, v))
            return True

        if kernels.enabled():
            # One C-level SSSP, then scan vertices in settle order (a
            # stable argsort reproduces the heap's (distance, vertex)
            # tie-breaking) applying the same stopping rule.
            csr = self._graph.csr()
            workspace = kernels.get_workspace(csr.num_vertices)
            all_distances = kernels.sssp(csr, query, workspace)
            for v in np.argsort(all_distances, kind="stable").tolist():
                dist_v = float(all_distances[v])
                if math.isinf(dist_v) or not score_vertex(v, dist_v):
                    break
        else:
            distances = [INFINITY] * self._graph.num_vertices
            distances[query] = 0.0
            heap: list[tuple[float, int]] = [(0.0, query)]
            neighbors = self._graph.neighbors
            while heap:
                dist_v, v = heapq.heappop(heap)
                if dist_v > distances[v]:
                    continue
                if not score_vertex(v, dist_v):
                    break
                for u, w in neighbors(v):
                    candidate = dist_v + w
                    if candidate < distances[u]:
                        distances[u] = candidate
                        heapq.heappush(heap, (candidate, u))
        ordered = sorted((-negative, o) for negative, o in results)
        return [(o, s) for s, o in ordered]

    def execute(self, query: Query) -> QueryResult:
        """Answer one :class:`repro.api.Query` (the canonical entry point)."""
        ensure_supported(query, self.name)
        if query.kind == "bknn":
            pairs = self._bknn(
                query.vertex,
                query.k,
                list(query.keywords),
                conjunctive=query.conjunctive,
            )
        else:
            pairs = self._top_k(query.vertex, query.k, list(query.keywords))
        return QueryResult(hits=hits_from_pairs(query.kind, pairs))

    def execute_many(self, queries: Sequence[Query]) -> list[QueryResult]:
        """Answer a batch of queries in order (sequential reference path)."""
        from repro.api import execute_many_sequential

        return execute_many_sequential(self, queries)

    def bknn(
        self,
        query: int,
        k: int,
        keywords: Sequence[str],
        conjunctive: bool = False,
    ) -> list[tuple[int, float]]:
        """Deprecated shim for :meth:`execute` with ``kind="bknn"``."""
        warn_deprecated(
            "NetworkExpansion.bknn(...)", "NetworkExpansion.execute(Query(...))"
        )
        return self._bknn(query, k, keywords, conjunctive=conjunctive)

    def top_k(
        self, query: int, k: int, keywords: Sequence[str]
    ) -> list[tuple[int, float]]:
        """Deprecated shim for :meth:`execute` with ``kind="topk"``."""
        warn_deprecated(
            "NetworkExpansion.top_k(...)", "NetworkExpansion.execute(Query(...))"
        )
        return self._top_k(query, k, keywords)

    def memory_bytes(self) -> int:
        return 0  # uses only the input graph and dataset
