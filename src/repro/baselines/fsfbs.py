"""FS-FBS baseline: forward search / forward backward search (Jiang et al.).

FS-FBS answers Boolean kNN queries over a 2-hop labeling index and its
inverse.  Every vertex stores a *label* of ``(hub, distance)`` pairs with
the 2-hop cover property; for each hub, a *backward label* lists the
objects that carry the hub, sorted by distance.  A query merges the
query vertex's label with the backward labels of its hubs best-first,
producing candidate objects in exact ascending distance order.

Keyword handling follows the original design and carries its flaws:

* **Frequent keywords** are aggregated into per-object *bit-array
  hashes*; a candidate is verified against the hash first, and hash
  collisions yield false positives that cost a real document check
  (``hash_false_positives`` counts them).
* **Infrequent keywords** have no ordered access at all — FS-FBS
  "simply computes network distances to all vertices containing the
  infrequent keyword", evaluating the entire inverted list.

The pre-processing is the heaviest of all baselines (backward labels
replicate every object label), which is why the paper could not build
it on FL/E/US; the benchmarks mirror that with a build-cost guard.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

from repro.api import (
    Query,
    QueryResult,
    ensure_supported,
    hits_from_pairs,
    warn_deprecated,
)
from repro.distance.hub_labeling import HubLabeling
from repro.graph.road_network import RoadNetwork
from repro.text.documents import KeywordDataset

INFINITY = math.inf


class FsFbs:
    """FS-FBS Boolean kNN index.

    Parameters
    ----------
    graph, dataset:
        Road network and keyword dataset.
    labeling:
        A pre-built :class:`HubLabeling`; built (CH-rank order) if omitted.
    frequency_threshold:
        Keywords with ``|inv(t)|`` above this are "frequent" and use the
        bit-array path; the paper notes the best value must be found
        experimentally — an awkwardness of the design.
    hash_bits:
        Width of the keyword bit-array hash (small = more collisions).
    """

    name = "FS-FBS"

    def __init__(
        self,
        graph: RoadNetwork,
        dataset: KeywordDataset,
        labeling: HubLabeling | None = None,
        frequency_threshold: int = 10,
        hash_bits: int = 64,
    ) -> None:
        if hash_bits < 1:
            raise ValueError("hash_bits must be positive")
        self._graph = graph
        self._dataset = dataset
        self._labels = labeling if labeling is not None else HubLabeling(graph)
        self.frequency_threshold = frequency_threshold
        self.hash_bits = hash_bits
        self.hash_false_positives = 0
        self.distance_computations = 0
        # Backward labels restricted to objects: hub -> [(distance, object)]
        # ascending — the expensive inverse index.
        self._backward: dict[int, list[tuple[float, int]]] = {}
        self._build_backward_labels()
        # Keyword bit arrays per object (frequent keywords only).
        self._object_masks: dict[int, int] = {}
        for o in dataset.objects():
            mask = 0
            for keyword in dataset.document(o):
                if self._is_frequent(keyword):
                    mask |= 1 << (hash(keyword) % hash_bits)
            self._object_masks[o] = mask

    def _build_backward_labels(self) -> None:
        # Hubs are label ordinals (consistent with the forward side).
        for o in self._dataset.objects():
            hub_ids, hub_dists = self._labels.label(o)
            for hub, distance in zip(hub_ids.tolist(), hub_dists.tolist()):
                self._backward.setdefault(hub, []).append((distance, o))
        for entries in self._backward.values():
            entries.sort()

    def _is_frequent(self, keyword: str) -> bool:
        return self._dataset.inverted_size(keyword) > self.frequency_threshold

    def _keyword_mask(self, keywords: Sequence[str]) -> int:
        mask = 0
        for keyword in keywords:
            mask |= 1 << (hash(keyword) % self.hash_bits)
        return mask

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _bknn(
        self,
        query: int,
        k: int,
        keywords: Sequence[str],
        conjunctive: bool = False,
    ) -> list[tuple[int, float]]:
        """Boolean kNN via forward-backward label search."""
        keywords = list(dict.fromkeys(keywords))
        if k < 1:
            raise ValueError("k must be positive")
        if not keywords:
            raise ValueError("need at least one query keyword")
        frequent = [t for t in keywords if self._is_frequent(t)]
        infrequent = [t for t in keywords if not self._is_frequent(t)]
        matcher = (
            self._dataset.contains_all if conjunctive else self._dataset.contains_any
        )
        results: list[tuple[float, int]] = []
        seen: set[int] = set()
        if infrequent:
            self._scan_infrequent(
                query, infrequent, keywords, matcher, results, seen
            )
        if frequent and not (conjunctive and infrequent):
            # With a conjunctive query containing an infrequent keyword,
            # the infrequent scan already covered every possible match.
            self._forward_backward_search(
                query, k, frequent, keywords, matcher, conjunctive, results, seen
            )
        results.sort()
        return [(o, d) for d, o in results[:k]]

    def execute(self, query: Query) -> QueryResult:
        """Answer one :class:`repro.api.Query` (the canonical entry point).

        FS-FBS answers Boolean kNN only (paper Table 1: no top-k).
        """
        ensure_supported(query, self.name, topk=False)
        pairs = self._bknn(
            query.vertex,
            query.k,
            list(query.keywords),
            conjunctive=query.conjunctive,
        )
        return QueryResult(hits=hits_from_pairs(query.kind, pairs))

    def execute_many(self, queries: Sequence[Query]) -> list[QueryResult]:
        """Answer a batch of queries in order (sequential reference path)."""
        from repro.api import execute_many_sequential

        return execute_many_sequential(self, queries)

    def bknn(
        self,
        query: int,
        k: int,
        keywords: Sequence[str],
        conjunctive: bool = False,
    ) -> list[tuple[int, float]]:
        """Deprecated shim for :meth:`execute` with ``kind="bknn"``."""
        warn_deprecated("FsFbs.bknn(...)", "FsFbs.execute(Query(...))")
        return self._bknn(query, k, keywords, conjunctive=conjunctive)

    def _scan_infrequent(
        self,
        query: int,
        infrequent: list[str],
        keywords: list[str],
        matcher,
        results: list[tuple[float, int]],
        seen: set[int],
    ) -> None:
        """Evaluate the *entire* inverted list of each infrequent keyword.

        The design's weakness: no ordered access means no early
        termination (paper §8)."""
        candidates: set[int] = set()
        for keyword in infrequent:
            candidates.update(self._dataset.inverted_list(keyword))
        for o in sorted(candidates):
            if o in seen or not matcher(o, keywords):
                continue
            seen.add(o)
            distance = self._labels.distance(query, o)
            self.distance_computations += 1
            if distance < INFINITY:
                results.append((distance, o))

    def _forward_backward_search(
        self,
        query: int,
        k: int,
        frequent: list[str],
        keywords: list[str],
        matcher,
        conjunctive: bool,
        results: list[tuple[float, int]],
        seen: set[int],
    ) -> None:
        """Best-first merge of the query label with backward labels.

        Yields objects in exact ascending distance order; each candidate
        passes the bit-array filter before the true document check."""
        query_mask = self._keyword_mask(frequent)
        hub_ids, hub_dists = self._labels.label(query)
        query_label = dict(zip(hub_ids.tolist(), hub_dists.tolist()))
        merge: list[tuple[float, int, int]] = []  # (bound, hub, position)
        for hub, to_hub in query_label.items():
            entries = self._backward.get(hub)
            if entries:
                merge.append((to_hub + entries[0][0], hub, 0))
        heapq.heapify(merge)
        # Collect k matches from the frequent path regardless of how many
        # infrequent-path results exist: FBS yields in ascending distance,
        # so the first k frequent matches dominate any later ones, and the
        # final sort merges the two candidate pools exactly.
        found = 0
        emitted: set[int] = set(seen)
        while merge and found < k:
            bound, hub, position = heapq.heappop(merge)
            entries = self._backward[hub]
            _, candidate = entries[position]
            if position + 1 < len(entries):
                next_bound = query_label[hub] + entries[position + 1][0]
                heapq.heappush(merge, (next_bound, hub, position + 1))
            if candidate in emitted:
                continue
            emitted.add(candidate)
            mask = self._object_masks.get(candidate, 0)
            if conjunctive:
                passes = (mask & query_mask) == query_mask
            else:
                passes = (mask & query_mask) != 0
            if not passes:
                continue
            # Bit arrays collide: verify against the real document.
            if not matcher(candidate, keywords):
                self.hash_false_positives += 1
                continue
            self.distance_computations += 1
            results.append((bound, candidate))
            found += 1

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def reset_counters(self) -> None:
        self.hash_false_positives = 0
        self.distance_computations = 0

    def memory_bytes(self) -> int:
        """Forward labels + backward labels + bit arrays: the largest
        pre-processing footprint of all baselines."""
        backward = sum(len(e) for e in self._backward.values()) * 24
        masks = len(self._object_masks) * (8 + self.hash_bits // 8)
        return self._labels.memory_bytes() + backward + masks
