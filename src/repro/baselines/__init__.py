"""Competing methods: keyword-aggregated baselines from the paper's §7."""

from repro.baselines.expansion import NetworkExpansion
from repro.baselines.fsfbs import FsFbs
from repro.baselines.gtree_sk import GTreeSpatialKeyword
from repro.baselines.road import Road, Rnet

__all__ = [
    "FsFbs",
    "GTreeSpatialKeyword",
    "NetworkExpansion",
    "Rnet",
    "Road",
]
