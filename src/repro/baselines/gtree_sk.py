"""G-tree spatial keyword baseline: keyword *aggregation* (paper §1.1, §7.4).

This is the state-of-the-art competitor the paper argues against.  Each
G-tree node aggregates its subtree's keywords into a *pseudo-document*
(keyword -> occurrence count and maximum impact) plus an *occurrence
list* of children containing objects.  Queries traverse the hierarchy
best-first by minimum network distance (BkNN) or by an aggregated score
bound (top-k), pruning nodes whose pseudo-documents cannot match.

Three variants are provided, mirroring §7.4:

* ``GTreeSpatialKeyword`` — the original algorithm with one occurrence
  list per node;
* ``optimized=True`` ("Gtree-Opt") — keyword-separated occurrence
  lists, pruning children that contain none of the query keywords
  without consulting pseudo-documents.  As the paper shows, this saves
  pseudo-document look-ups but **not** matrix operations: the aggregation
  hierarchy is still evaluated to the same depth;
* KS-GT is *not* here — it is :class:`repro.core.KSpin` with a
  :class:`repro.distance.GTree` oracle plugged in.

``pseudo_document_lookups`` and the underlying G-tree's
``matrix_operations`` are the cost counters behind Figures 15 and 16.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

from repro.api import (
    Query,
    QueryResult,
    ensure_supported,
    hits_from_pairs,
    warn_deprecated,
)
from repro.distance.gtree import GTree
from repro.graph.road_network import RoadNetwork
from repro.text.documents import KeywordDataset
from repro.text.relevance import RelevanceModel

INFINITY = math.inf


class GTreeSpatialKeyword:
    """Keyword-aggregated spatial keyword queries over a G-tree.

    Parameters
    ----------
    graph, dataset:
        The road network and its keyword dataset.
    gtree:
        A pre-built :class:`GTree`; built on demand when omitted.
    optimized:
        Use per-keyword occurrence lists (the paper's Gtree-Opt).
    """

    name = "G-tree SK"

    def __init__(
        self,
        graph: RoadNetwork,
        dataset: KeywordDataset,
        gtree: GTree | None = None,
        optimized: bool = False,
        leaf_size: int = 32,
    ) -> None:
        self._graph = graph
        self._dataset = dataset
        self.gtree = gtree if gtree is not None else GTree(graph, leaf_size=leaf_size)
        self.optimized = optimized
        if optimized:
            self.name = "Gtree-Opt"
        self._relevance = RelevanceModel(dataset)
        self.pseudo_document_lookups = 0
        # Per-node aggregation: keyword -> (count, max impact) and the
        # objects held by each leaf.
        self._pseudo_documents: list[dict[str, tuple[int, float]]] = []
        self._leaf_objects: dict[int, list[int]] = {}
        # occurrence lists: node -> children-with-objects; optimized
        # adds node -> keyword -> children-with-that-keyword.
        self._occurrence: list[set[int]] = []
        self._keyword_occurrence: list[dict[str, set[int]]] = []
        self._aggregate()

    # ------------------------------------------------------------------
    # Index construction (keyword aggregation)
    # ------------------------------------------------------------------
    def _aggregate(self) -> None:
        nodes = self.gtree.nodes
        self._pseudo_documents = [dict() for _ in nodes]
        self._occurrence = [set() for _ in nodes]
        self._keyword_occurrence = [dict() for _ in nodes]
        object_set = set(self._dataset.objects())
        for node in sorted(nodes, key=lambda n: -n.depth):
            if node.is_leaf:
                members = sorted(object_set.intersection(node.vertices))
                self._leaf_objects[node.index] = members
                pseudo: dict[str, tuple[int, float]] = {}
                for o in members:
                    for keyword, frequency in self._dataset.document(o).items():
                        count, impact = pseudo.get(keyword, (0, 0.0))
                        pseudo[keyword] = (
                            count + frequency,
                            max(impact, self._relevance.object_impact(o, keyword)),
                        )
                self._pseudo_documents[node.index] = pseudo
            else:
                pseudo = {}
                for child in node.children:
                    child_pseudo = self._pseudo_documents[child]
                    if child_pseudo:
                        self._occurrence[node.index].add(child)
                    for keyword, (count, impact) in child_pseudo.items():
                        total, best = pseudo.get(keyword, (0, 0.0))
                        pseudo[keyword] = (total + count, max(best, impact))
                        self._keyword_occurrence[node.index].setdefault(
                            keyword, set()
                        ).add(child)
                self._pseudo_documents[node.index] = pseudo

    # ------------------------------------------------------------------
    # Pruning helpers
    # ------------------------------------------------------------------
    def _node_matches(
        self, node_index: int, keywords: Sequence[str], conjunctive: bool
    ) -> bool:
        """Pseudo-document check: can this subtree contain a match?

        Aggregation makes this a *necessary* condition only — the false
        positive source the paper§1.1 dissects.
        """
        self.pseudo_document_lookups += 1
        pseudo = self._pseudo_documents[node_index]
        if conjunctive:
            return all(t in pseudo for t in keywords)
        return any(t in pseudo for t in keywords)

    def _promising_children(
        self, node_index: int, keywords: Sequence[str], conjunctive: bool
    ) -> list[int]:
        """Children worth descending into, per the configured variant."""
        if self.optimized:
            # Gtree-Opt: keyword-separated occurrence lists prune childless
            # children without any pseudo-document look-up (§7.4.1).
            occurrence = self._keyword_occurrence[node_index]
            if conjunctive:
                candidate_sets = [occurrence.get(t, set()) for t in keywords]
                if not candidate_sets or not all(candidate_sets):
                    return []
                children = set.intersection(*candidate_sets)
            else:
                children = set()
                for t in keywords:
                    children |= occurrence.get(t, set())
            return sorted(children)
        children = [
            child
            for child in self._occurrence[node_index]
            if self._node_matches(child, keywords, conjunctive)
        ]
        return sorted(children)

    def _max_relevance_bound(
        self, node_index: int, query_impacts: dict[str, float]
    ) -> float:
        """Upper bound on TR of any object in the subtree (aggregated)."""
        self.pseudo_document_lookups += 1
        pseudo = self._pseudo_documents[node_index]
        return sum(
            weight * pseudo[t][1]
            for t, weight in query_impacts.items()
            if t in pseudo
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _bknn(
        self,
        query: int,
        k: int,
        keywords: Sequence[str],
        conjunctive: bool = False,
    ) -> list[tuple[int, float]]:
        """Boolean kNN via aggregated best-first hierarchy traversal."""
        keywords = list(dict.fromkeys(keywords))
        if k < 1:
            raise ValueError("k must be positive")
        if not keywords:
            raise ValueError("need at least one query keyword")
        self.gtree.clear_cache()
        matcher = (
            self._dataset.contains_all if conjunctive else self._dataset.contains_any
        )
        results: list[tuple[float, int]] = []  # max-heap via negation

        def threshold() -> float:
            return -results[0][0] if len(results) == k else INFINITY

        queue: list[tuple[float, int]] = []
        root = 0
        if self._node_matches(root, keywords, conjunctive):
            heapq.heappush(queue, (0.0, root))
        while queue and queue[0][0] < threshold():
            _, node_index = heapq.heappop(queue)
            node = self.gtree.nodes[node_index]
            if node.is_leaf:
                for o in self._leaf_objects[node_index]:
                    if not matcher(o, keywords):
                        continue
                    distance = self.gtree.distance(query, o)
                    if distance < threshold():
                        if len(results) == k:
                            heapq.heapreplace(results, (-distance, o))
                        else:
                            heapq.heappush(results, (-distance, o))
                continue
            for child in self._promising_children(node_index, keywords, conjunctive):
                bound = self.gtree.min_distance_to_node(query, child)
                if bound < threshold():
                    heapq.heappush(queue, (bound, child))
        ordered = sorted((-negative, o) for negative, o in results)
        return [(o, d) for d, o in ordered]

    def _top_k(
        self, query: int, k: int, keywords: Sequence[str]
    ) -> list[tuple[int, float]]:
        """Top-k by weighted distance via aggregated score bounds."""
        keywords = list(dict.fromkeys(keywords))
        if k < 1:
            raise ValueError("k must be positive")
        if not keywords:
            raise ValueError("need at least one query keyword")
        self.gtree.clear_cache()
        query_impacts = self._relevance.query_impacts(keywords)
        results: list[tuple[float, int]] = []

        def threshold() -> float:
            return -results[0][0] if len(results) == k else INFINITY

        queue: list[tuple[float, int]] = []
        root_bound = self._score_bound(query, 0, query_impacts)
        if root_bound < INFINITY:
            heapq.heappush(queue, (root_bound, 0))
        while queue and queue[0][0] < threshold():
            _, node_index = heapq.heappop(queue)
            node = self.gtree.nodes[node_index]
            if node.is_leaf:
                for o in self._leaf_objects[node_index]:
                    relevance = self._relevance.textual_relevance(
                        keywords, o, query_impacts
                    )
                    if relevance <= 0.0:
                        continue
                    score = self.gtree.distance(query, o) / relevance
                    if score < threshold():
                        if len(results) == k:
                            heapq.heapreplace(results, (-score, o))
                        else:
                            heapq.heappush(results, (-score, o))
                continue
            for child in self._promising_children(node_index, keywords, False):
                bound = self._score_bound(query, child, query_impacts)
                if bound < threshold():
                    heapq.heappush(queue, (bound, child))
        ordered = sorted((-negative, o) for negative, o in results)
        return [(o, s) for s, o in ordered]

    def _score_bound(
        self, query: int, node_index: int, query_impacts: dict[str, float]
    ) -> float:
        """Lower bound on any subtree object's score: mindist / TR_max."""
        relevance_bound = self._max_relevance_bound(node_index, query_impacts)
        if relevance_bound <= 0.0:
            return INFINITY
        distance_bound = self.gtree.min_distance_to_node(query, node_index)
        return distance_bound / relevance_bound

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def reset_counters(self) -> None:
        """Zero the pseudo-document and matrix-operation counters."""
        self.pseudo_document_lookups = 0
        self.gtree.reset_counters()

    def execute(self, query: Query) -> QueryResult:
        """Answer one :class:`repro.api.Query` (the canonical entry point)."""
        ensure_supported(query, self.name)
        if query.kind == "bknn":
            pairs = self._bknn(
                query.vertex,
                query.k,
                list(query.keywords),
                conjunctive=query.conjunctive,
            )
        else:
            pairs = self._top_k(query.vertex, query.k, list(query.keywords))
        return QueryResult(hits=hits_from_pairs(query.kind, pairs))

    def execute_many(self, queries: Sequence[Query]) -> list[QueryResult]:
        """Answer a batch of queries in order (sequential reference path)."""
        from repro.api import execute_many_sequential

        return execute_many_sequential(self, queries)

    def bknn(
        self,
        query: int,
        k: int,
        keywords: Sequence[str],
        conjunctive: bool = False,
    ) -> list[tuple[int, float]]:
        """Deprecated shim for :meth:`execute` with ``kind="bknn"``."""
        warn_deprecated(
            "GTreeSpatialKeyword.bknn(...)",
            "GTreeSpatialKeyword.execute(Query(...))",
        )
        return self._bknn(query, k, keywords, conjunctive=conjunctive)

    def top_k(
        self, query: int, k: int, keywords: Sequence[str]
    ) -> list[tuple[int, float]]:
        """Deprecated shim for :meth:`execute` with ``kind="topk"``."""
        warn_deprecated(
            "GTreeSpatialKeyword.top_k(...)",
            "GTreeSpatialKeyword.execute(Query(...))",
        )
        return self._top_k(query, k, keywords)

    @property
    def matrix_operations(self) -> int:
        """Matrix look-up-and-sums spent (Figure 16's metric)."""
        return self.gtree.matrix_operations

    def memory_bytes(self) -> int:
        """G-tree matrices plus aggregated keyword structures."""
        per_entry = 90
        pseudo = sum(len(p) for p in self._pseudo_documents)
        occurrence = sum(len(o) for o in self._occurrence)
        keyword_occurrence = sum(
            len(children)
            for per_node in self._keyword_occurrence
            for children in per_node.values()
        )
        return (
            self.gtree.memory_bytes()
            + (pseudo + occurrence + keyword_occurrence) * per_entry
        )
