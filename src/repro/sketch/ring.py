"""Stable hashing and a consistent-hash ring.

Every sketch (and the keyword-shard router) needs hashes that agree
*across process generations*: Python's builtin ``hash`` is randomised
per process, so a rehydrated worker would disagree with its parent
about keyword ownership and Bloom bit positions.  This module is the
single home for process-stable hashing:

* :func:`stable_hash` — CRC-32 of the UTF-8 bytes, the cheap 32-bit
  hash behind keyword→shard ownership (kept bit-compatible with the
  historical ``repro.serve.placement.shard_of`` formula).
* :func:`stable_hash64` — a 64-bit BLAKE2b hash for sketches that need
  more entropy than CRC-32 offers (HyperLogLog register selection,
  Bloom double hashing).
* :class:`ConsistentHashRing` — virtual-node consistent hashing, the
  placement groundwork for elastic clusters: adding or removing one
  node moves only ~1/n of the key space instead of reshuffling
  everything the way ``crc32 % n`` does.
"""

from __future__ import annotations

import bisect
import hashlib
import zlib
from typing import Iterable

__all__ = ["ConsistentHashRing", "stable_hash", "stable_hash64"]


def stable_hash(key: str) -> int:
    """Process-stable 32-bit hash of ``key`` (CRC-32 of UTF-8 bytes)."""
    return zlib.crc32(key.encode("utf-8"))


def stable_hash64(key: str, salt: str = "") -> int:
    """Process-stable 64-bit hash of ``key`` (BLAKE2b, optional salt)."""
    digest = hashlib.blake2b(
        key.encode("utf-8"), digest_size=8, salt=salt.encode("utf-8")[:16]
    ).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Consistent hashing with virtual nodes.

    Each node is mapped onto ``vnodes`` points of a 64-bit ring; a key
    belongs to the first node point at or clockwise after its hash.
    Adding or removing one node therefore only remaps the keys that
    fell between the changed node's points and their predecessors —
    about ``1/len(nodes)`` of the key space — which is the property the
    elastic-cluster roadmap item needs for live resharding.

    Parameters
    ----------
    nodes:
        Initial node names (order-insensitive; the ring is determined
        by hashes alone, so two rings built from the same node set are
        identical).
    vnodes:
        Virtual points per node; more points smooth the load spread at
        the cost of a larger sorted index.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._points: list[tuple[int, str]] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[str, ...]:
        """The current node set, sorted for deterministic iteration."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def add_node(self, node: str) -> None:
        """Add ``node``'s virtual points to the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = (stable_hash64(f"{node}#{i}"), node)
            bisect.insort(self._points, point)

    def remove_node(self, node: str) -> None:
        """Remove ``node`` and all its virtual points."""
        if node not in self._nodes:
            raise KeyError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node_for(self, key: str) -> str:
        """The node owning ``key`` (first point clockwise of its hash)."""
        if not self._points:
            raise LookupError("the ring has no nodes")
        index = bisect.bisect_right(self._points, (stable_hash64(key), "￿"))
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._points[index][1]

    def spread(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each node owns (load-balance diagnostics)."""
        counts: dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
