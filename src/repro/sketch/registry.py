"""IndexSketches: the sketch registry summarising one keyword index.

One object bundles everything the serving stack wants to know about an
index without touching it:

* **Per-shard Bloom filters** over the keywords each shard owns (the
  :func:`repro.sketch.ring.stable_hash` ``% num_shards`` ownership rule,
  bit-compatible with ``repro.serve.placement.shard_of``).  A shard
  whose filter rejects a keyword provably holds no objects for it, so
  the router can drop the keyword — and skip the shard outright when
  every keyword it owns is rejected.
* **Per-keyword HyperLogLogs** over live object IDs, plus one global
  object HLL, giving the cost model ``rho = |inv(t)| / |O|`` from O(KB)
  registers instead of a walk over live-object sets.

The registry is insert-only between refreshes: inserts and
``add_keyword`` updates are folded in incrementally (Bloom bits and HLL
registers only ever gain information), while deletes merely *stale* the
sketches — lingering bits over-estimate, which costs wasted dispatch
but never a missed result.  :meth:`needs_refresh` tells the owner when
enough deletes have accumulated to justify a rebuild via
:meth:`refresh`.

When a Bloom filter saturates past ``max_fill`` its answers stop
meaning much (FP rate ``fill**k`` blows past the configured bound), so
:meth:`may_contain` fails open — full fan-out, never lost recall.
"""

from __future__ import annotations

from typing import Any, Collection, Mapping, Protocol

from repro.sketch.bloom import BloomFilter
from repro.sketch.hll import HyperLogLog
from repro.sketch.ring import stable_hash

__all__ = ["IndexSketches"]


class _NVDLike(Protocol):
    """The one method the registry needs from a per-keyword diagram."""

    def live_objects(self) -> Collection[int]: ...


class IndexLike(Protocol):
    """Structural view of ``KeywordSeparatedIndex`` (no import cycle)."""

    def keywords(self) -> tuple[str, ...]: ...

    def nvd(self, keyword: str) -> _NVDLike | None: ...


class IndexSketches:
    """Mergeable sketch summary of one keyword-separated index.

    Parameters
    ----------
    num_shards:
        Keyword-ownership shard count (the cluster's worker count; 1
        for a single-process engine).
    fp_rate:
        Configured Bloom false-positive bound per shard filter.
    precision:
        HyperLogLog precision for the per-keyword cardinality sketches
        (the global object sketch uses ``precision + 2`` for a tighter
        denominator).
    capacity:
        Expected keywords per shard filter; sizes the shared Bloom
        geometry.  All shards use one geometry so filters merge.
    max_fill:
        Bloom fill ratio beyond which :meth:`may_contain` fails open.
    refresh_threshold:
        Staling deletes tolerated before :meth:`needs_refresh` fires.
    """

    def __init__(
        self,
        num_shards: int = 1,
        fp_rate: float = 0.01,
        precision: int = 8,
        capacity: int = 1024,
        max_fill: float = 0.5,
        refresh_threshold: int = 64,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        if refresh_threshold < 1:
            raise ValueError("refresh_threshold must be positive")
        self.num_shards = num_shards
        self.fp_rate = fp_rate
        self.precision = precision
        self.capacity = capacity
        self.max_fill = max_fill
        self.refresh_threshold = refresh_threshold
        self.shard_filters: list[BloomFilter] = [
            BloomFilter.with_capacity(capacity, fp_rate=fp_rate)
            for _ in range(num_shards)
        ]
        self.keyword_cardinality: dict[str, HyperLogLog] = {}
        self.object_sketch = HyperLogLog(precision=min(16, precision + 2))
        self.stale_deletes = 0
        self._fill_cache: list[float | None] = [0.0] * num_shards

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_index(
        cls,
        index: IndexLike,
        num_shards: int = 1,
        fp_rate: float = 0.01,
        precision: int = 8,
        max_fill: float = 0.5,
        refresh_threshold: int = 64,
    ) -> "IndexSketches":
        """Build a fresh registry from an index's live state.

        The Bloom capacity is derived from the actual keyword count so
        the realised FP rate lands near ``fp_rate`` regardless of
        corpus size, with 2x headroom: an optimal filter sized exactly
        at its key count sits at ~50% fill by construction, which would
        trip the ``max_fill`` saturation guard on a healthy filter and
        fail the shard open. Headroom keeps at-load fill near 29% and
        leaves room for keywords inserted by later updates.
        """
        keywords = index.keywords()
        per_shard = 2 * max(16, -(-len(keywords) // num_shards))  # ceil div
        sketches = cls(
            num_shards=num_shards,
            fp_rate=fp_rate,
            precision=precision,
            capacity=per_shard,
            max_fill=max_fill,
            refresh_threshold=refresh_threshold,
        )
        sketches._ingest(index)
        return sketches

    def _ingest(self, index: IndexLike) -> None:
        for keyword in index.keywords():
            nvd = index.nvd(keyword)
            live = nvd.live_objects() if nvd is not None else ()
            if not live:
                continue
            self.add_keyword(keyword, live)

    def refresh(self, index: IndexLike) -> None:
        """Rebuild every sketch from the index's current live state.

        The only way stale delete bits ever leave; cheap relative to a
        diagram rebuild (it reads live-object sets, builds no NVDs).
        Built aside and swapped in attribute-by-attribute so concurrent
        readers never observe a half-ingested filter: each attribute
        they read is always a *complete* sketch (possibly the stale
        one, which only over-estimates — recall-safe either way).
        """
        fresh = IndexSketches(
            num_shards=self.num_shards,
            fp_rate=self.fp_rate,
            precision=self.precision,
            capacity=self.capacity,
            max_fill=self.max_fill,
            refresh_threshold=self.refresh_threshold,
        )
        # Keep the existing geometry so pre- and post-refresh filters
        # stay mergeable with any serialized copies in flight.
        fresh.shard_filters = [
            BloomFilter(
                num_bits=self.shard_filters[0].num_bits,
                num_hashes=self.shard_filters[0].num_hashes,
            )
            for _ in range(self.num_shards)
        ]
        fresh.object_sketch = HyperLogLog(precision=self.object_sketch.precision)
        fresh._ingest(index)
        self.shard_filters = fresh.shard_filters
        self.keyword_cardinality = fresh.keyword_cardinality
        self.object_sketch = fresh.object_sketch
        self._fill_cache = fresh._fill_cache
        self.stale_deletes = 0

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def shard_of(self, keyword: str) -> int:
        """The shard owning ``keyword`` (stable across processes)."""
        return stable_hash(keyword) % self.num_shards

    def add_keyword(self, keyword: str, objects: Collection[int]) -> None:
        """Record ``keyword`` carrying ``objects`` (insert-only fold)."""
        shard = self.shard_of(keyword)
        self.shard_filters[shard].add(keyword)
        self._fill_cache[shard] = None
        sketch = self.keyword_cardinality.get(keyword)
        if sketch is None:
            sketch = HyperLogLog(precision=self.precision)
            self.keyword_cardinality[keyword] = sketch
        for obj in objects:
            sketch.add_int(obj)
            self.object_sketch.add_int(obj)

    def apply_update(self, op_name: str, keywords: Collection[str],
                     obj: int | None) -> None:
        """Fold one update operation's effect into the sketches.

        Inserts and keyword additions are folded exactly; deletes and
        keyword removals cannot shrink insert-only sketches, so they
        bump :attr:`stale_deletes` instead and the owner refreshes once
        :meth:`needs_refresh` trips.
        """
        if op_name in ("insert", "add_keyword"):
            for keyword in keywords:
                self.add_keyword(keyword, (obj,) if obj is not None else ())
        elif op_name in ("delete", "remove_keyword"):
            self.stale_deletes += 1
        # "rebuild" changes diagram internals, not the live sets.

    def needs_refresh(self) -> bool:
        """Whether accumulated deletes warrant a :meth:`refresh`."""
        return self.stale_deletes >= self.refresh_threshold

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def saturated(self, shard: int) -> bool:
        """Whether ``shard``'s filter is too full to trust."""
        cached = self._fill_cache[shard]
        if cached is None:
            cached = self.shard_filters[shard].fill_ratio()
            self._fill_cache[shard] = cached
        return cached > self.max_fill

    def may_contain(self, keyword: str) -> bool:
        """Can any object carry ``keyword``?  ``False`` is a proof.

        Fails open (returns True) when the owning shard's filter is
        saturated — a saturated filter's "yes" is meaningless but its
        "no" would still be sound; we fan out anyway to keep the
        realised FP rate inside the configured bound.
        """
        shard = self.shard_of(keyword)
        if self.saturated(shard):
            return True
        return keyword in self.shard_filters[shard]

    def cardinality(self, keyword: str) -> int:
        """Estimated ``|inv(t)|``; exactly 0 only for never-seen keywords."""
        sketch = self.keyword_cardinality.get(keyword)
        return sketch.cardinality() if sketch is not None else 0

    def total_objects(self) -> int:
        """Estimated ``|O|`` (the selectivity denominator)."""
        return self.object_sketch.cardinality()

    def selectivity(self, keyword: str) -> float:
        """Estimated ``rho = |inv(t)| / |O|`` (0.0 for unseen keywords)."""
        total = self.total_objects()
        if total <= 0:
            return 0.0
        return min(1.0, self.cardinality(keyword) / total)

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, other: "IndexSketches") -> "IndexSketches":
        """Fold another registry in (cluster-wide roll-up); returns self."""
        if self.num_shards != other.num_shards:
            raise ValueError("cannot merge registries with different shard counts")
        for shard, filt in enumerate(other.shard_filters):
            self.shard_filters[shard].merge(filt)
            self._fill_cache[shard] = None
        for keyword, sketch in other.keyword_cardinality.items():
            mine = self.keyword_cardinality.get(keyword)
            if mine is None:
                self.keyword_cardinality[keyword] = HyperLogLog.from_dict(
                    sketch.to_dict()
                )
            else:
                mine.merge(sketch)
        self.object_sketch.merge(other.object_sketch)
        self.stale_deletes += other.stale_deletes
        return self

    # ------------------------------------------------------------------
    # Serialization / inspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Lightweight stats for metrics and the ``repro sketch`` verb."""
        return {
            "num_shards": self.num_shards,
            "fp_rate_bound": self.fp_rate,
            "keywords": len(self.keyword_cardinality),
            "total_objects": self.total_objects(),
            "stale_deletes": self.stale_deletes,
            "shards": [
                {
                    "shard": shard,
                    "keywords": filt.count,
                    "fill_ratio": round(filt.fill_ratio(), 6),
                    "fp_rate": round(filt.false_positive_rate(), 6),
                    "saturated": self.saturated(shard),
                }
                for shard, filt in enumerate(self.shard_filters)
            ],
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "num_shards": self.num_shards,
            "fp_rate": self.fp_rate,
            "precision": self.precision,
            "capacity": self.capacity,
            "max_fill": self.max_fill,
            "refresh_threshold": self.refresh_threshold,
            "stale_deletes": self.stale_deletes,
            "shard_filters": [filt.to_dict() for filt in self.shard_filters],
            "keyword_cardinality": {
                keyword: sketch.to_dict()
                for keyword, sketch in self.keyword_cardinality.items()
            },
            "object_sketch": self.object_sketch.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "IndexSketches":
        sketches = cls(
            num_shards=int(payload["num_shards"]),
            fp_rate=float(payload.get("fp_rate", 0.01)),
            precision=int(payload.get("precision", 8)),
            capacity=int(payload.get("capacity", 1024)),
            max_fill=float(payload.get("max_fill", 0.5)),
            refresh_threshold=int(payload.get("refresh_threshold", 64)),
        )
        sketches.shard_filters = [
            BloomFilter.from_dict(item) for item in payload["shard_filters"]
        ]
        sketches.keyword_cardinality = {
            str(keyword): HyperLogLog.from_dict(item)
            for keyword, item in payload.get("keyword_cardinality", {}).items()
        }
        sketches.object_sketch = HyperLogLog.from_dict(payload["object_sketch"])
        sketches.stale_deletes = int(payload.get("stale_deletes", 0))
        sketches._fill_cache = [None] * sketches.num_shards
        return sketches

    def __getstate__(self) -> dict[str, Any]:
        return self.to_dict()

    def __setstate__(self, state: dict[str, Any]) -> None:
        other = IndexSketches.from_dict(state)
        self.__dict__.update(other.__dict__)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"IndexSketches(num_shards={self.num_shards}, "
            f"keywords={len(self.keyword_cardinality)}, "
            f"stale_deletes={self.stale_deletes})"
        )
