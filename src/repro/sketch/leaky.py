"""Leaky-bucket rate limiting for the HTTP front door.

A leaky bucket drains at ``rate`` tokens per second and holds at most
``capacity`` tokens; each request pours one token in.  A client may
burst up to ``capacity`` requests instantly, then is held to the
steady-state ``rate`` — the classic shaping behaviour, implemented
lazily (no timer thread): the level is decayed on each touch from the
elapsed wall-clock time.

The clock is injectable so tests run instantly and deterministically.

:class:`ClientRateLimiter` maps client IDs to buckets, prunes buckets
that have fully drained and gone idle (unbounded client-ID streams must
not leak memory), and reports how long a rejected client should wait —
the ``Retry-After`` value the HTTP layer sends with a 429.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

__all__ = ["ClientRateLimiter", "LeakyBucket"]


class LeakyBucket:
    """A single leaky bucket.

    Parameters
    ----------
    rate:
        Drain rate in tokens per second (steady-state requests/sec).
    capacity:
        Maximum tokens the bucket holds (burst allowance).
    clock:
        Monotonic-seconds source; defaults to :func:`time.monotonic`.
    """

    __slots__ = ("rate", "capacity", "_level", "_updated", "_clock")

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0.0:
            raise ValueError("rate must be positive")
        if capacity < 1.0:
            raise ValueError("capacity must be at least 1")
        self.rate = rate
        self.capacity = capacity
        self._level = 0.0
        self._updated = clock()
        self._clock = clock

    def _drain(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._level = max(0.0, self._level - elapsed * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> float | None:
        """Pour ``tokens`` in if they fit.

        Returns ``None`` on success, or the seconds until the bucket
        will have drained enough to accept them (the ``Retry-After``).
        """
        if tokens <= 0.0:
            raise ValueError("tokens must be positive")
        self._drain()
        if self._level + tokens <= self.capacity:
            self._level += tokens
            return None
        overflow = self._level + tokens - self.capacity
        return overflow / self.rate

    def level(self) -> float:
        """The current token level after draining."""
        self._drain()
        return self._level

    def idle(self) -> bool:
        """True when the bucket has fully drained (safe to prune)."""
        return self.level() <= 0.0

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"LeakyBucket(rate={self.rate}, capacity={self.capacity}, "
            f"level={self._level:.2f})"
        )


class ClientRateLimiter:
    """Per-client leaky buckets behind a single lock.

    Parameters
    ----------
    rate / capacity:
        The per-client bucket parameters (every client gets the same
        limits; an unset client ID shares the ``"anonymous"`` bucket).
    clock:
        Injectable monotonic clock shared by all buckets.
    max_clients:
        A hard cap on tracked buckets; when exceeded, fully-drained
        buckets are pruned, and if none are idle the newest request is
        still admitted against a fresh bucket after evicting the
        stalest one (memory safety beats perfect fairness for
        adversarial client-ID churn).
    """

    def __init__(
        self,
        rate: float = 50.0,
        capacity: float = 100.0,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 10_000,
    ) -> None:
        if max_clients < 1:
            raise ValueError("max_clients must be positive")
        self.rate = rate
        self.capacity = capacity
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: dict[str, LeakyBucket] = {}
        self._lock = threading.Lock()
        self.allowed = 0
        self.limited = 0

    def check(self, client: str, cost: float = 1.0) -> float | None:
        """Charge ``cost`` tokens to ``client`` (one per carried query).

        A plain request costs 1; a ``/v1/batch`` request costs its batch
        size so batching cannot bypass the limit.  Returns ``None`` when
        admitted, or the ``Retry-After`` seconds until the *whole*
        charge would fit.  A cost above ``capacity`` can never fit and
        always limits (callers should split such batches).
        """
        if cost <= 0.0:
            raise ValueError("cost must be positive")
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self.max_clients:
                    self._prune_locked()
                bucket = LeakyBucket(self.rate, self.capacity, clock=self._clock)
                self._buckets[client] = bucket
            retry_after = bucket.try_acquire(cost)
            if retry_after is None:
                self.allowed += 1
            else:
                self.limited += 1
            return retry_after

    def _prune_locked(self) -> None:
        idle = [client for client, bucket in self._buckets.items() if bucket.idle()]
        for client in idle:
            del self._buckets[client]
        if len(self._buckets) >= self.max_clients:
            # No idle bucket to reclaim: evict the lowest-level (stalest)
            # bucket so a new client can still be tracked.
            stalest = min(self._buckets, key=lambda c: self._buckets[c].level())
            del self._buckets[stalest]

    def tracked_clients(self) -> int:
        with self._lock:
            return len(self._buckets)

    def snapshot(self) -> dict[str, Any]:
        """Counters for the metrics endpoint."""
        with self._lock:
            return {
                "rate": self.rate,
                "capacity": self.capacity,
                "allowed": self.allowed,
                "limited": self.limited,
                "tracked_clients": len(self._buckets),
            }
