"""HyperLogLog: per-keyword object-cardinality sketches.

K-SPIN's planner (Observation 1) is driven by keyword selectivity
``rho = |inv(t)| / |O|``; the serving layer wants that number without
walking inverted lists or live-object sets.  A HyperLogLog summarises
a set of object IDs in ``2^p`` one-byte registers (1 KB at the default
``p = 10``) and answers cardinality within ``~1.04 / sqrt(2^p)``
relative standard error (≈3.3 % at p=10).

Properties the serving stack leans on:

* **Insert-only and idempotent** — re-adding an element never changes
  a register, so lazy re-insertion during update replay is harmless.
* **Mergeable** — element-wise register max; merging per-worker
  sketches is *exactly* the sketch of the pooled stream
  (register-identical, the property the tests pin).
* **No false zeros** — any added element forces a register above 0, so
  an estimate of 0 proves the set was never added to; planners may
  treat 0 as "provably empty" (deletions are handled by refresh, not
  decrement).

Small-range bias is corrected with linear counting (the standard
Flajolet et al. correction), which makes estimates on the few-hundred
element inverted lists of the test ladder nearly exact.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

from repro.sketch.ring import stable_hash64

__all__ = ["HyperLogLog"]


def _alpha(m: int) -> float:
    """The standard HLL bias-correction constant for ``m`` registers."""
    if m <= 16:
        return 0.673
    if m <= 32:
        return 0.697
    if m <= 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """A HyperLogLog cardinality sketch over hashable string items.

    Parameters
    ----------
    precision:
        ``p`` in [4, 16]; ``2^p`` registers, relative standard error
        ``1.04 / sqrt(2^p)``.  Default 10 → 1 KB, ~3.3 % error.
    """

    __slots__ = ("precision", "_registers")

    def __init__(self, precision: int = 10) -> None:
        if not 4 <= precision <= 16:
            raise ValueError("precision must be in [4, 16]")
        self.precision = precision
        self._registers = bytearray(1 << precision)

    @property
    def num_registers(self) -> int:
        return 1 << self.precision

    def relative_error(self) -> float:
        """The sketch's relative standard error ``1.04 / sqrt(m)``."""
        return 1.04 / math.sqrt(self.num_registers)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def add(self, item: str) -> None:
        """Add one item (idempotent)."""
        hashed = stable_hash64(item, salt="hll")
        index = hashed >> (64 - self.precision)
        remainder = hashed & ((1 << (64 - self.precision)) - 1)
        # Rank = leading-zero count of the remainder within its
        # (64 - p)-bit window, plus one; an all-zero remainder gets the
        # maximum rank.
        rank = (64 - self.precision) - remainder.bit_length() + 1
        if rank > self._registers[index]:
            self._registers[index] = rank

    def add_int(self, item: int) -> None:
        """Add an integer item (object IDs) via its decimal spelling."""
        self.add(str(item))

    def update(self, items: Iterable[str]) -> None:
        for item in items:
            self.add(item)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(self) -> float:
        """The cardinality estimate with small-range correction."""
        m = self.num_registers
        inverse_sum = 0.0
        zeros = 0
        for register in self._registers:
            inverse_sum += 2.0 ** -register
            if register == 0:
                zeros += 1
        raw = _alpha(m) * m * m / inverse_sum
        if raw <= 2.5 * m and zeros:
            return m * math.log(m / zeros)  # linear counting
        return raw

    def cardinality(self) -> int:
        """:meth:`estimate` rounded to an integer (never negative)."""
        return max(0, round(self.estimate()))

    def is_empty(self) -> bool:
        """True iff nothing was ever added (all registers zero)."""
        return not any(self._registers)

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Element-wise register max; returns self.

        Register-identical to the sketch of the pooled stream, so
        cluster-wide cardinalities are exactly as accurate as a single
        sketch over all workers' elements.
        """
        if self.precision != other.precision:
            raise ValueError("cannot merge HyperLogLogs with different precision")
        for i, register in enumerate(other._registers):
            if register > self._registers[i]:
                self._registers[i] = register
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"precision": self.precision, "registers": self._registers.hex()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HyperLogLog":
        sketch = cls(precision=int(payload["precision"]))
        registers = bytearray.fromhex(str(payload["registers"]))
        if len(registers) != sketch.num_registers:
            raise ValueError("register payload does not match the precision")
        sketch._registers = registers
        return sketch

    def __getstate__(self) -> dict[str, Any]:
        return self.to_dict()

    def __setstate__(self, state: dict[str, Any]) -> None:
        other = HyperLogLog.from_dict(state)
        self.precision = other.precision
        self._registers = other._registers

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HyperLogLog):
            return NotImplemented
        return (
            self.precision == other.precision
            and self._registers == other._registers
        )

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"HyperLogLog(precision={self.precision}, estimate={self.estimate():.1f})"
