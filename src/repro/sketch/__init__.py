"""``repro.sketch`` — mergeable probabilistic sketches for serving.

Stdlib-only, picklable, mergeable summaries that let routing, planning,
cache admission, and overload protection run on O(KB) state instead of
full inverted lists:

* :class:`BloomFilter` — per-shard keyword membership (no false
  negatives, so shard skipping is recall-safe).
* :class:`HyperLogLog` — per-keyword object cardinality for the
  selectivity ``rho`` the K-SPIN planner keys on (Observation 1).
* :class:`LossyCounter` — online hot-keyword detection in bounded
  memory (cache admission).
* :class:`LeakyBucket` / :class:`ClientRateLimiter` — per-client
  request shaping for the HTTP front door.
* :class:`IndexSketches` — the registry bundling Bloom + HLL summaries
  of one keyword-separated index, with incremental update folding.
* :class:`ConsistentHashRing` / :func:`stable_hash` /
  :func:`stable_hash64` — process-stable hashing and the virtual-node
  ring the elastic-cluster roadmap item builds on.

Every sketch offers ``merge()`` (Bloom and HLL merges are *exactly*
the pooled build; lossy counting keeps its error bound over the pooled
stream), ``to_dict``/``from_dict`` JSON round-trips, and pickling for
IPC.  See ``docs/sketches.md`` for tuning tables.
"""

from repro.sketch.bloom import BloomFilter
from repro.sketch.hll import HyperLogLog
from repro.sketch.leaky import ClientRateLimiter, LeakyBucket
from repro.sketch.lossy import LossyCounter
from repro.sketch.registry import IndexSketches
from repro.sketch.ring import ConsistentHashRing, stable_hash, stable_hash64

__all__ = [
    "BloomFilter",
    "ClientRateLimiter",
    "ConsistentHashRing",
    "HyperLogLog",
    "IndexSketches",
    "LeakyBucket",
    "LossyCounter",
    "stable_hash",
    "stable_hash64",
]
