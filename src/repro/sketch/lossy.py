"""Lossy counting: online hot-item detection in bounded memory.

Zipf-skewed serving traffic concentrates on a few hot keywords, but the
hot set drifts and the keyword universe is unbounded — an exact counter
dict grows without limit.  Manku–Motwani lossy counting keeps at most
``O(1/epsilon * log(epsilon * N))`` entries and guarantees, after ``N``
observations:

* **No over-count** — ``estimate(x) <= true_count(x)``.
* **Bounded under-count** — ``true_count(x) - estimate(x) <= epsilon*N``.
* **No misses among the hot** — any item with
  ``true_count >= epsilon * N`` is still tracked.

So "is this keyword hot?" (count above a support threshold) is answered
exactly for thresholds above ``epsilon * N``, which is what cache
admission needs: only keywords the counter still tracks deserve an LRU
slot.

Merging folds another counter's survivors in and widens the error bound
to the *sum* of both streams' bounds (``epsilon * (N1 + N2)``); the
no-over-count side is preserved exactly.  Bit-identical merge ≡
pooled-build does not hold for lossy counting (bucket boundaries
differ), but the error-bound contract above does — the tests pin the
contract, not the representation.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

__all__ = ["LossyCounter"]


class LossyCounter:
    """A Manku–Motwani lossy counter over string items.

    Parameters
    ----------
    epsilon:
        The error bound: after ``N`` observations every estimate is
        within ``epsilon * N`` below the true count.  Memory is
        ``O(1/epsilon)``-ish; the default 0.001 tracks ~1k entries max
        under adversarial streams, far fewer under Zipf traffic.
    """

    __slots__ = ("epsilon", "observed", "_width", "_bucket", "_entries")

    def __init__(self, epsilon: float = 0.001) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        self.observed = 0  # N: total items observed
        self._width = math.ceil(1.0 / epsilon)  # bucket width
        self._bucket = 1  # current bucket id
        # item -> (count, max_missed): count is observed-while-tracked,
        # max_missed bounds what was dropped before tracking began.
        self._entries: dict[str, tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def add(self, item: str, weight: int = 1) -> None:
        """Observe ``item`` ``weight`` times."""
        if weight < 1:
            raise ValueError("weight must be positive")
        for _ in range(weight):
            self.observed += 1
            entry = self._entries.get(item)
            if entry is not None:
                self._entries[item] = (entry[0] + 1, entry[1])
            else:
                self._entries[item] = (1, self._bucket - 1)
            if self.observed % self._width == 0:
                self._bucket += 1
                self._prune()

    def update(self, items: Iterable[str]) -> None:
        for item in items:
            self.add(item)

    def _prune(self) -> None:
        """Drop entries whose count + slack falls at/below the bucket id."""
        stale = [
            item
            for item, (count, missed) in self._entries.items()
            if count + missed <= self._bucket - 1
        ]
        for item in stale:
            del self._entries[item]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, item: str) -> int:
        """The tracked count (0 if pruned); never exceeds the true count."""
        entry = self._entries.get(item)
        return entry[0] if entry is not None else 0

    def __contains__(self, item: str) -> bool:
        return item in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def error_bound(self) -> int:
        """The maximum under-count right now: ``floor(epsilon * N)``."""
        return math.floor(self.epsilon * self.observed)

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` largest tracked items as ``(item, estimate)`` pairs."""
        if n < 0:
            raise ValueError("n must be non-negative")
        ranked = sorted(
            self._entries.items(), key=lambda kv: (-kv[1][0], kv[0])
        )
        return [(item, count) for item, (count, _missed) in ranked[:n]]

    def items_over(self, support: int) -> list[tuple[str, int]]:
        """Tracked items with estimate >= ``support`` (descending)."""
        return [(item, count) for item, count in self.top(len(self._entries))
                if count >= support]

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, other: "LossyCounter") -> "LossyCounter":
        """Fold ``other``'s survivors into this counter; returns self.

        Counts add; the per-item slack adds (an item absent from one
        side may have been pruned there, so that side's full error
        bound is charged).  The merged counter keeps both guarantees
        over the combined stream of ``N1 + N2`` observations.
        """
        if self.epsilon != other.epsilon:
            raise ValueError("cannot merge LossyCounters with different epsilon")
        self_bound = self._bucket - 1
        other_bound = other._bucket - 1
        merged: dict[str, tuple[int, int]] = {}
        for item in set(self._entries) | set(other._entries):
            mine = self._entries.get(item)
            theirs = other._entries.get(item)
            count = (mine[0] if mine else 0) + (theirs[0] if theirs else 0)
            missed = (mine[1] if mine else self_bound) + (
                theirs[1] if theirs else other_bound
            )
            merged[item] = (count, missed)
        self._entries = merged
        self.observed += other.observed
        self._bucket = self.observed // self._width + 1
        self._prune()
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "epsilon": self.epsilon,
            "observed": self.observed,
            "bucket": self._bucket,
            "entries": {
                item: [count, missed]
                for item, (count, missed) in self._entries.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LossyCounter":
        counter = cls(epsilon=float(payload["epsilon"]))
        counter.observed = int(payload.get("observed", 0))
        counter._bucket = int(payload.get("bucket", 1))
        entries: dict[str, tuple[int, int]] = {}
        raw: Mapping[str, Any] = payload.get("entries", {})
        for item, pair in raw.items():
            entries[str(item)] = (int(pair[0]), int(pair[1]))
        counter._entries = entries
        return counter

    def __getstate__(self) -> dict[str, Any]:
        return self.to_dict()

    def __setstate__(self, state: dict[str, Any]) -> None:
        other = LossyCounter.from_dict(state)
        self.epsilon = other.epsilon
        self.observed = other.observed
        self._width = other._width
        self._bucket = other._bucket
        self._entries = other._entries

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"LossyCounter(epsilon={self.epsilon}, observed={self.observed}, "
            f"tracked={len(self._entries)})"
        )
