"""A mergeable Bloom filter (per-shard keyword membership).

The sharded cluster asks one question per query keyword: *can shard s
hold any object for keyword t?*  A Bloom filter answers it in O(k)
hash probes over an O(KB) bit array with **no false negatives** — a
"no" is a proof of absence, so routing may skip the shard without any
recall risk; a false positive merely dispatches a sub-query that
returns empty (wasted work, never a wrong answer).

Design notes
------------
* **Double hashing** (Kirsch–Mitzenmacher): the ``i``-th probe is
  ``h1 + i * h2 (mod m)`` over two independent 64-bit BLAKE2b halves,
  so ``k`` probes cost one digest.
* **Mergeable**: two filters built with identical geometry OR their
  bit arrays; ``merge`` is *exactly* equivalent to having built one
  filter from the union of both key sets (bit-identical payloads).
* **Deletion-free**: keys cannot be removed.  The serving layer treats
  a deleted keyword's lingering bits as a false positive — extra work,
  never a missed result — and refreshes the filter on diagram rebuilds.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

from repro.sketch.ring import stable_hash64

__all__ = ["BloomFilter"]

#: Geometry keys that must agree for two filters to merge.
_GEOMETRY = ("num_bits", "num_hashes")


class BloomFilter:
    """A fixed-geometry Bloom filter over string keys.

    Parameters
    ----------
    num_bits:
        Bit-array size ``m`` (rounded up to a whole byte internally).
    num_hashes:
        Probes per key ``k``.

    Prefer :meth:`with_capacity`, which derives the optimal geometry
    from an expected key count and a target false-positive rate.
    """

    __slots__ = ("num_bits", "num_hashes", "count", "_bits")

    def __init__(self, num_bits: int = 1024, num_hashes: int = 7) -> None:
        if num_bits < 8:
            raise ValueError("num_bits must be at least 8")
        if num_hashes < 1:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.count = 0  # keys added (an upper bound after merges)
        self._bits = bytearray((num_bits + 7) // 8)

    @classmethod
    def with_capacity(cls, capacity: int, fp_rate: float = 0.01) -> "BloomFilter":
        """The optimal geometry for ``capacity`` keys at ``fp_rate``.

        ``m = -n ln p / (ln 2)^2`` bits and ``k = (m/n) ln 2`` probes —
        the textbook optimum; at these settings the realised
        false-positive rate at exactly ``capacity`` keys is ``~fp_rate``.
        """
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        num_bits = max(8, math.ceil(-capacity * math.log(fp_rate) / math.log(2) ** 2))
        num_hashes = max(1, round(num_bits / capacity * math.log(2)))
        return cls(num_bits=num_bits, num_hashes=num_hashes)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def _probes(self, key: str) -> Iterable[int]:
        digest = stable_hash64(key, salt="bloom1"), stable_hash64(key, salt="bloom2")
        h1, h2 = digest
        # Force h2 odd so the probe sequence cycles the whole array even
        # when num_bits is a power of two.
        h2 |= 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: str) -> None:
        """Insert ``key`` (idempotent on the bit array)."""
        for position in self._probes(key):
            self._bits[position >> 3] |= 1 << (position & 7)
        self.count += 1

    def update(self, keys: Iterable[str]) -> None:
        """Insert every key in ``keys``."""
        for key in keys:
            self.add(key)

    def __contains__(self, key: str) -> bool:
        return all(
            self._bits[position >> 3] & (1 << (position & 7))
            for position in self._probes(key)
        )

    # ------------------------------------------------------------------
    # Merge / accounting
    # ------------------------------------------------------------------
    def merge(self, other: "BloomFilter") -> "BloomFilter":
        """OR ``other``'s bits into this filter; returns self.

        Requires identical geometry; the result is bit-identical to a
        filter built from the union of both key sets (the merge ≡
        pooled-build property the tests pin).
        """
        if (self.num_bits, self.num_hashes) != (other.num_bits, other.num_hashes):
            raise ValueError("cannot merge Bloom filters with different geometry")
        for i, byte in enumerate(other._bits):
            self._bits[i] |= byte
        self.count += other.count
        return self

    def fill_ratio(self) -> float:
        """Fraction of bits set — the saturation signal for routing.

        At the optimal geometry a filter holding its design capacity
        sits near 0.5; beyond ~0.5 the false-positive rate grows past
        the configured bound and routing should stop trusting it.
        """
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits

    def false_positive_rate(self) -> float:
        """The *realised* FP-rate estimate ``fill_ratio ** k``."""
        return self.fill_ratio() ** self.num_hashes

    def approx_count(self) -> float:
        """Distinct-key estimate from the fill ratio (Swamidass–Baldi)."""
        fill = self.fill_ratio()
        if fill >= 1.0:
            return float("inf")
        return -self.num_bits / self.num_hashes * math.log(1.0 - fill)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready payload (inverse of :meth:`from_dict`)."""
        return {
            "num_bits": self.num_bits,
            "num_hashes": self.num_hashes,
            "count": self.count,
            "bits": self._bits.hex(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BloomFilter":
        filt = cls(
            num_bits=int(payload["num_bits"]),
            num_hashes=int(payload["num_hashes"]),
        )
        bits = bytearray.fromhex(str(payload["bits"]))
        if len(bits) != len(filt._bits):
            raise ValueError("bit payload does not match the declared geometry")
        filt._bits = bits
        filt.count = int(payload.get("count", 0))
        return filt

    def __getstate__(self) -> dict[str, Any]:
        return self.to_dict()

    def __setstate__(self, state: dict[str, Any]) -> None:
        other = BloomFilter.from_dict(state)
        self.num_bits = other.num_bits
        self.num_hashes = other.num_hashes
        self.count = other.count
        self._bits = other._bits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (
            self.num_bits == other.num_bits
            and self.num_hashes == other.num_hashes
            and self._bits == other._bits
        )

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"BloomFilter(num_bits={self.num_bits}, num_hashes={self.num_hashes}, "
            f"count={self.count}, fill={self.fill_ratio():.3f})"
        )
