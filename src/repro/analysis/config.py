"""Project-invariant registry shared by the linter and the lock debugger.

The K-SPIN serving stack states its concurrency and reproducibility
invariants as *data*: which attributes are shared mutable state and
which lock guards them, which modules must stay deterministic so
``structural_fingerprint`` comparisons mean anything, which tier must
never swallow exceptions.  Both enforcement layers read this one
registry:

* the **static** layer (:mod:`repro.analysis.rules`) checks, file by
  file, that every write to a guarded attribute happens lexically under
  its lock;
* the **runtime** layer (:mod:`repro.analysis.lockdebug`) installs
  write-guard descriptors over the same attributes in
  ``REPRO_LOCK_DEBUG=1`` mode and reports writes observed while the
  declared lock is not held by the writing thread.

Keys are *module keys*: the path of a source file relative to the
``repro`` package (``"serve/cluster.py"``).  A file outside the package
(e.g. a lint-rule fixture) can opt into a scope with a
``# ksp: scope=serve/cluster.py`` marker in its first lines.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# KSP002 — shared mutable state and the lock that guards it
# ----------------------------------------------------------------------
#: module key -> class name -> attribute names whose writes require the
#: class's lock to be held (lexically: a ``with <lock>`` block or a
#: ``# ksp: holds[...]`` contract on the enclosing function).
GUARDED_ATTRIBUTES: dict[str, dict[str, frozenset[str]]] = {
    "serve/engine.py": {
        "Engine": frozenset({"updates_applied"}),
    },
    "serve/cache.py": {
        "ResultCache": frozenset({
            "hits",
            "misses",
            "invalidations",
            "_entries",
            "_by_keyword",
        }),
    },
    "serve/metrics.py": {
        "ServerMetrics": frozenset({
            "shed",
            "timeouts",
            "queries_served",
            "_requests",
            "_errors",
            "_latency",
            "_error_latency",
            "_query_latency",
            "_endpoint_latency",
            "_stage_latency",
            "_stats_totals",
            "_batch_size",
        }),
    },
    "serve/cluster.py": {
        "ClusterCoordinator": frozenset({
            "updates_applied",
            "fallback_queries",
            "retried_requests",
            "workers",
            "_journal",
            "_pool",
            "_started",
            "_snapshot_path",
            "_owns_snapshot",
        }),
    },
}

#: Method names that mutate a container in place: calling one of these
#: on a guarded attribute counts as a write.
MUTATING_METHODS = frozenset({
    "append",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "merge",
    "move_to_end",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
    "record",
})

# ----------------------------------------------------------------------
# KSP003 — blocking calls that must not run under a lock
# ----------------------------------------------------------------------
#: Dotted-name suffixes considered blocking.  ``Condition.wait`` is
#: deliberately absent: waiting on a condition *requires* holding its
#: lock.  ``str.join`` collides with ``Thread.join``, so joins are
#: excluded too — the lock-order runtime detector covers those.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "sleep",
    "recv",
    "recv_bytes",
    "poll",
    "select.select",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
})

# ----------------------------------------------------------------------
# KSP004 — nondeterminism in fingerprint-reproducible code paths
# ----------------------------------------------------------------------
#: Module-key prefixes whose built artefacts must be bit-reproducible
#: (the NVD build, the distance oracles, and the CSR search kernels:
#: ``structural_fingerprint`` equality across parallel builds and worker
#: rehydration depends on them being pure functions of their inputs).
REPRODUCIBLE_PREFIXES = ("nvd/", "distance/", "kernels/")

#: Dotted names whose call introduces wall-clock or RNG nondeterminism.
#: ``random.Random`` (an explicitly seeded instance) is allowed and
#: handled specially by the rule.
NONDETERMINISTIC_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbelow",
})

#: Functions of the global (process-wide, unseeded-by-default) RNGs.
NONDETERMINISTIC_PREFIXES = ("random.", "np.random.", "numpy.random.")

# ----------------------------------------------------------------------
# KSP005 — the tier where exceptions must never be swallowed silently
# ----------------------------------------------------------------------
#: Module keys of the supervision/IPC tier: a swallowed exception here
#: turns a worker death or pipe desync into an unexplained hang.
IPC_TIER = frozenset({
    "serve/supervisor.py",
    "serve/ipc.py",
    "serve/cluster.py",
})

# ----------------------------------------------------------------------
# KSP006 — objects crossing the IPC boundary must pickle
# ----------------------------------------------------------------------
#: Module-key prefixes where IPC send calls live.
IPC_PREFIX = "serve/"

#: Method names that put a payload on a pipe (or hand one to a child
#: process): lambdas and closures in their arguments fail to pickle
#: (fork hides this until the first spawn-mode restart).
IPC_SEND_METHODS = frozenset({"send", "send_bytes", "request", "Process"})

# ----------------------------------------------------------------------
# KSP001 — frozen API value types
# ----------------------------------------------------------------------
#: ``repro.api`` frozen dataclasses: the query surface's value types.
#: Mutating one after construction breaks cache keys, journal replay,
#: and cross-process equality all at once.
FROZEN_API_TYPES = frozenset({
    "Query",
    "QueryResult",
    "Hit",
    "UpdateOp",
    "QueryBatch",
    "BatchResult",
})

# ----------------------------------------------------------------------
# KSP007 — batch entry points must not loop over per-item shims
# ----------------------------------------------------------------------
#: Function-name suffixes declaring a *batch* entry point: callers pay
#: for one round trip and expect amortised execution.
BATCH_SUFFIXES = ("_many", "_batch")

#: The public per-item surface those batch bodies must not loop over —
#: such a loop silently re-serialises the batch one query at a time
#: (per-item locking, caching, and IPC round trips) while the name
#: claims otherwise.  Sanctioned sequential fallbacks live in
#: explicitly-named helpers (``execute_many_sequential``) or carry a
#: ``# ksp: ignore[KSP007]`` on the looping line.
PER_ITEM_SHIMS = frozenset({"execute", "distance", "knn", "lower_bound"})

# ----------------------------------------------------------------------
# KSP009 — transitive IPC payload picklability
# ----------------------------------------------------------------------
#: Class names whose instances the ``multiprocessing`` machinery itself
#: knows how to move across a ``Process(...)`` boundary (the pipe ends
#: handed to a child are reduced by the spawn plumbing, not pickled by
#: our payload code).
PROCESS_SAFE_TYPES = frozenset({"Connection", "PipeConnection"})

# ----------------------------------------------------------------------
# KSP010 — the repro.api engine protocol and its batch overrides
# ----------------------------------------------------------------------
#: The protocol surface: method name -> canonical positional parameter
#: names after ``self``.  Extra positional parameters are allowed only
#: with defaults (callers dispatch through the protocol shape).
ENGINE_PROTOCOL_PARAMS: dict[str, tuple[str, ...]] = {
    "execute": ("query",),
    "execute_many": ("queries",),
    "apply": ("op",),
}

#: module key -> class name -> the protocol methods that class claims.
#: The four road-network baselines are query-only (the paper's
#: comparison runs them against static indexes); the three updatable
#: engines claim ``apply`` as well.
ENGINE_REGISTRY: dict[str, dict[str, tuple[str, ...]]] = {
    "core/framework.py": {
        "KSpin": ("execute", "execute_many", "apply"),
    },
    "serve/engine.py": {
        "Engine": ("execute", "execute_many", "apply"),
    },
    "serve/cluster.py": {
        "ClusterCoordinator": ("execute", "execute_many", "apply"),
    },
    "baselines/expansion.py": {
        "NetworkExpansion": ("execute", "execute_many"),
    },
    "baselines/fsfbs.py": {
        "FsFbs": ("execute", "execute_many"),
    },
    "baselines/gtree_sk.py": {
        "GTreeSpatialKeyword": ("execute", "execute_many"),
    },
    "baselines/road.py": {
        "Road": ("execute", "execute_many"),
    },
}

#: Module-key prefixes scanned for *unregistered* engine-shaped classes
#: (anything defining both ``execute`` and ``execute_many``): a new
#: engine must be added to :data:`ENGINE_REGISTRY` so conformance and
#: batch-equivalence coverage follow it.
ENGINE_SCAN_PREFIXES = (
    "serve/engine.py",
    "serve/cluster.py",
    "baselines/",
    "core/framework.py",
)

#: Module-key prefixes whose public ``*_many``/``*_batch`` definitions
#: must be registered below (private ``_``-prefixed helpers and
#: non-protocol modules — cache sweeps, HTTP handlers, bench harnesses
#: — are out of scope).
BATCH_SCAN_PREFIXES = (
    "api.py",
    "serve/engine.py",
    "serve/cluster.py",
    "core/framework.py",
    "baselines/",
    "distance/",
    "lowerbound/",
)

#: Batch override -> the sequential reference its equivalence tests run
#: against.  ``"<module key>::<Class>.<method>"`` (or a bare function
#: name for module-level entries).  An unregistered override is a
#: KSP010 finding: nothing guarantees it computes what the per-item
#: path computes.
BATCH_REGISTRY: dict[str, str] = {
    "api.py::execute_batch": "api.execute_many_sequential",
    "serve/engine.py::Engine.execute_many": "api.execute_many_sequential",
    "serve/cluster.py::ClusterCoordinator.execute_many": (
        "api.execute_many_sequential"
    ),
    "core/framework.py::KSpin.execute_many": "api.execute_many_sequential",
    "baselines/expansion.py::NetworkExpansion.execute_many": (
        "api.execute_many_sequential"
    ),
    "baselines/fsfbs.py::FsFbs.execute_many": "api.execute_many_sequential",
    "baselines/gtree_sk.py::GTreeSpatialKeyword.execute_many": (
        "api.execute_many_sequential"
    ),
    "baselines/road.py::Road.execute_many": "api.execute_many_sequential",
    "distance/base.py::DistanceOracle.distances_many": (
        "DistanceOracle.distance (definitional sequential loop)"
    ),
    "distance/base.py::DistanceOracle.knn_many": (
        "DistanceOracle.knn (definitional sequential loop)"
    ),
    "distance/dijkstra_oracle.py::DijkstraOracle.distances_many": (
        "DistanceOracle.distances_many"
    ),
    "distance/dijkstra_oracle.py::BidirectionalDijkstraOracle.distances_many": (
        "DistanceOracle.distances_many"
    ),
    "distance/hub_labeling.py::HubLabeling.distances_many": (
        "DistanceOracle.distances_many"
    ),
    "distance/hub_labeling.py::HubLabeling.knn_many": (
        "DistanceOracle.knn_many"
    ),
    "distance/composite.py::CompositeOracle.distances_many": (
        "DistanceOracle.distances_many"
    ),
    "distance/composite.py::CompositeOracle.knn_many": (
        "DistanceOracle.knn_many"
    ),
    "lowerbound/base.py::LowerBounder.lower_bounds_to_many": (
        "LowerBounder.lower_bound (definitional sequential loop)"
    ),
    "lowerbound/alt.py::AltLowerBounder.lower_bounds_to_many": (
        "LowerBounder.lower_bounds_to_many"
    ),
    "lowerbound/alt.py::AltLowerBounder.lower_bounds_many": (
        "LowerBounder.lower_bounds_to_many"
    ),
    "lowerbound/hub_label.py::HubLabelLowerBounder.lower_bounds_to_many": (
        "LowerBounder.lower_bounds_to_many"
    ),
}

# ----------------------------------------------------------------------
# KSP011 — observability coverage of every externally-driven surface
# ----------------------------------------------------------------------
#: Where each surface kind is discovered (module key): HTTP endpoints
#: from ``endpoint`` string comparisons in the request router, pipe
#: message kinds from ``kind`` comparisons in the worker loop, CLI
#: verbs from ``add_parser("...")`` registrations.
SURFACE_SOURCES: dict[str, str] = {
    "http": "serve/http.py",
    "ipc": "serve/ipc.py",
    "cli": "cli.py",
}

#: Surface -> the span/event names that prove it is observable.  An
#: empty tuple is an *explicit* exemption (liveness probes and the
#: observability drains themselves: instrumenting ``/metrics`` with a
#: metric would recurse).  Every listed name must match
#: :data:`INSTRUMENTATION_NAMES` / :data:`INSTRUMENTATION_PREFIXES`
#: *and* be emitted somewhere in the tree.
OBSERVED_SURFACES: dict[str, tuple[str, ...]] = {
    "http:/query": ("http.query",),
    "http:/bknn": ("http.bknn",),
    "http:/topk": ("http.topk",),
    "http:/batch": ("http.batch",),
    "http:/update": ("http.update", "update.applied"),
    "http:/healthz": (),
    "http:/metrics": (),
    "http:/debug/traces": (),
    "http:/debug/events": (),
    "http:/debug/profile": ("profiler.start", "profiler.stop"),
    "ipc:query": ("worker.query",),
    "ipc:query_batch": ("worker.query", "batch.scatter"),
    "ipc:update": ("update.applied",),
    "ipc:ping": (),
    "ipc:metrics": (),
    "ipc:health": (),
    "ipc:events": (),
    "ipc:profile": ("profiler.start", "profiler.stop"),
    "ipc:stop": ("worker.stop",),
    "cli:serve": ("http.query", "worker.spawn"),
    "cli:explain": ("explain.query",),
    "cli:profile": ("profiler.start",),
    "cli:events": (),
    "cli:stats": (),
    "cli:build": (),
    "cli:query": (),
    "cli:sketch": (),
    "cli:lint": (),
    "cli:typecheck": (),
    "cli:demo": (),
}

#: Every span/event name the tree is allowed to emit.  An emit site
#: whose constant name is absent here is a KSP011 finding (drift: the
#: registry is the contract dashboards and alert rules are written
#: against), and a name listed here but never emitted is stale.
INSTRUMENTATION_NAMES = frozenset({
    # flight-recorder events
    "query.shed",
    "query.rate_limited",
    "query.deadline",
    "cache.evict",
    "cache.admit_rejected",
    "worker.start",
    "worker.spawn",
    "worker.death",
    "worker.restart",
    "worker.stop",
    "batch.scatter",
    "batch.gather",
    "sketch.refresh",
    "slo.burn_start",
    "slo.burn_stop",
    "update.applied",
    "profiler.start",
    "profiler.stop",
    # spans
    "http.batch",
    "http.update",
    "cluster.execute",
    "cluster.dispatch",
    "cluster.merge",
    "cluster.sketch_short_circuit",
    "worker.query",
    "engine.cache_lookup",
    "engine.lock_wait",
    "engine.execute",
    "directed.execute",
    "processor.search",
    "processor.heap_generation",
})

#: Prefixes for dynamically-built names (``"http." + endpoint``,
#: ``f"explain.{kind}"``): an emit site whose name is a constant prefix
#: + runtime suffix is valid when the prefix is listed here, and a
#: registry name matching a prefix counts as emitted.
INSTRUMENTATION_PREFIXES = ("http.", "explain.")

# ----------------------------------------------------------------------
# Runtime write-guard registry (REPRO_LOCK_DEBUG=1)
# ----------------------------------------------------------------------
#: (dotted module, class name, lock attribute, guarded attributes) —
#: resolved lazily by :func:`repro.analysis.lockdebug.instrument` so
#: this module stays import-light and dependency-free.
WATCHED_ATTRIBUTES: tuple[tuple[str, str, str, tuple[str, ...]], ...] = (
    (
        "repro.serve.metrics",
        "ServerMetrics",
        "_lock",
        ("shed", "timeouts", "queries_served"),
    ),
    (
        "repro.serve.cache",
        "ResultCache",
        "_lock",
        ("hits", "misses", "invalidations"),
    ),
    (
        "repro.serve.cluster",
        "ClusterCoordinator",
        "_stats_lock",
        ("fallback_queries", "retried_requests"),
    ),
)
