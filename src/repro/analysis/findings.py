"""Finding: one linter diagnostic, with stable formatting.

Every rule in :mod:`repro.analysis.rules` reports violations as
:class:`Finding` values; the CLI renders them one per line in the
classic ``path:line:col: CODE message`` shape editors and CI log
scrapers already understand, and ``--format json`` emits the same
fields as a JSON array for tooling.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, code) so reports are deterministic
    regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line report form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation for ``repro lint --format json``."""
        return dict(asdict(self))
