"""The project symbol table: one parse of ``src/repro``, shared facts.

Generation two of the analysis subsystem is *whole-program*: the
interprocedural rules (KSP008–KSP011) reason about invariants that span
module boundaries — lock acquisition order across call chains, type
reachability into IPC payloads, protocol conformance, observability
coverage.  All of them start from the same pre-computed facts:

* every **class** with its base names, methods, and the *types of its
  attributes* as far as they can be read off ``__init__`` assignments
  and annotations (``self._lock = threading.Lock()`` records both the
  attribute and the fact that its value cannot pickle);
* every **function and method** with its parameters, its ``# ksp:
  holds[...]`` lock contracts, and its AST node for the call-graph
  builder;
* per-module **import aliases** so a call to ``trace_span(...)``
  resolves to ``repro.obs.trace.span``.

Everything here is a *static approximation*: Python's dynamism means
the table records what the source says lexically, which is exactly the
level the KSP rules are specified at.  Stdlib-only (``ast``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.rules import HOLDS_MARKER, ModuleContext, dotted_name

#: Call leaves whose result can never cross a pickle boundary: locks,
#: condition variables, threads, pools, sockets, thread-local storage.
#: ``make_lock`` is the project's own lock factory.
UNPICKLABLE_FACTORIES = frozenset({
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "local",
    "Thread",
    "Timer",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "socket",
    "make_lock",
})


def _holds_contracts(line_text: str) -> tuple[str, ...]:
    """Lock expressions named in a ``# ksp: holds[self._lock]`` comment."""
    marker = line_text.find(HOLDS_MARKER)
    if marker < 0:
        return ()
    open_bracket = line_text.find("[", marker)
    close_bracket = line_text.find("]", open_bracket + 1)
    if open_bracket < 0 or close_bracket < 0:
        return ()
    inner = line_text[open_bracket + 1:close_bracket]
    return tuple(
        token.strip() for token in inner.split(",") if token.strip()
    )


@dataclass
class FunctionSymbol:
    """One function or method, with the facts the project rules need."""

    name: str
    qualname: str  # "serve/cluster.py::ClusterCoordinator.apply"
    key: str  # owning module key
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: tuple[str, ...]  # positional parameter names, in order
    defaults: int  # how many of the trailing params have defaults
    holds: tuple[str, ...]  # raw lock expressions from the contract

    @property
    def lineno(self) -> int:
        return self.node.lineno

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassSymbol:
    """One class: bases, methods, and statically-readable attribute types."""

    name: str
    key: str
    node: ast.ClassDef
    bases: tuple[str, ...]  # dotted base-class names, best effort
    methods: dict[str, FunctionSymbol] = field(default_factory=dict)
    #: attribute -> type name (leaf), from ``self.x = T(...)`` in
    #: ``__init__``, ``self.x: T`` annotations, or class-level ``x: T``.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attribute -> factory leaf, for attributes assigned a value that
    #: can never pickle (``self._lock = threading.Lock()``).
    unpicklable_attrs: dict[str, str] = field(default_factory=dict)
    #: The class manages its own pickling; reachability stops here.
    custom_pickle: bool = False

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ModuleSymbols:
    """One parsed module's contribution to the project table."""

    ctx: ModuleContext
    classes: dict[str, ClassSymbol] = field(default_factory=dict)
    functions: dict[str, FunctionSymbol] = field(default_factory=dict)
    #: local alias -> dotted source ("trace_span" -> "repro.obs.trace.span")
    imports: dict[str, str] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return self.ctx.key

    @property
    def path(self) -> str:
        return self.ctx.path


def _annotation_leaf(annotation: ast.AST | None) -> str | None:
    """The class-name leaf of an annotation, unwrapping Optional/quotes."""
    if annotation is None:
        return None
    node: ast.AST = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    # "X | None" and "Optional[X]" both unwrap to X.
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_leaf(node.left)
        if left and left != "None":
            return left
        return _annotation_leaf(node.right)
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value).rsplit(".", 1)[-1]
        if base == "Optional":
            return _annotation_leaf(node.slice)
        return base or None
    name = dotted_name(node).rsplit(".", 1)[-1]
    return name or None


class ProjectSymbols:
    """Symbol table over every module handed to one lint invocation."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleSymbols] = {}
        self.classes_by_name: dict[str, list[ClassSymbol]] = {}
        self.methods_by_name: dict[str, list[FunctionSymbol]] = {}
        self.functions_by_name: dict[str, list[FunctionSymbol]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, contexts: Iterable[ModuleContext]) -> "ProjectSymbols":
        table = cls()
        for ctx in contexts:
            table._add_module(ctx)
        return table

    def _add_module(self, ctx: ModuleContext) -> None:
        module = ModuleSymbols(ctx=ctx)
        # Later files with a colliding key (possible only among test
        # fixtures claiming the same scope) extend rather than replace.
        self.modules.setdefault(ctx.key, module)
        module = self.modules[ctx.key]
        self._collect_imports(ctx, module)
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                self._collect_class(ctx, module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbol = self._function_symbol(ctx, node, class_name=None)
                module.functions[symbol.name] = symbol
                self.functions_by_name.setdefault(symbol.name, []).append(symbol)

    @staticmethod
    def _collect_imports(ctx: ModuleContext, module: ModuleSymbols) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    module.imports[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    module.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def _collect_class(
        self, ctx: ModuleContext, module: ModuleSymbols, node: ast.ClassDef
    ) -> None:
        symbol = ClassSymbol(
            name=node.name,
            key=ctx.key,
            node=node,
            bases=tuple(
                name for name in (dotted_name(base) for base in node.bases)
                if name
            ),
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._function_symbol(ctx, stmt, class_name=node.name)
                symbol.methods[method.name] = method
                self.methods_by_name.setdefault(method.name, []).append(method)
                if stmt.name in ("__getstate__", "__reduce__", "__reduce_ex__"):
                    symbol.custom_pickle = True
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                leaf = _annotation_leaf(stmt.annotation)
                if leaf:
                    symbol.attr_types[stmt.target.id] = leaf
        self._collect_attribute_types(symbol)
        module.classes[node.name] = symbol
        self.classes_by_name.setdefault(node.name, []).append(symbol)

    def _function_symbol(
        self,
        ctx: ModuleContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> FunctionSymbol:
        params = tuple(
            arg.arg for arg in list(node.args.posonlyargs) + list(node.args.args)
        )
        scope = f"{class_name}.{node.name}" if class_name else node.name
        return FunctionSymbol(
            name=node.name,
            qualname=f"{ctx.key}::{scope}",
            key=ctx.key,
            class_name=class_name,
            node=node,
            params=params,
            defaults=len(node.args.defaults),
            holds=_holds_contracts(ctx.line_text(node.lineno)),
        )

    def _collect_attribute_types(self, symbol: ClassSymbol) -> None:
        """Read ``self.x = ...`` type facts out of every method body.

        Three sources, in increasing priority: a constructor call whose
        callee is a known class (``self.x = Engine(...)``), an explicit
        annotation (``self.x: Engine = ...``), and a parameter echo
        (``self.x = kspin`` where ``kspin: KSpin`` is annotated).
        Unpicklable factory calls are recorded separately.
        """
        for method in symbol.methods.values():
            param_types: dict[str, str] = {}
            args = method.node.args
            for arg in list(args.posonlyargs) + list(args.args) + list(
                args.kwonlyargs
            ):
                leaf = _annotation_leaf(arg.annotation)
                if leaf:
                    param_types[arg.arg] = leaf
            for node in ast.walk(method.node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                annotation: ast.AST | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value, annotation = node.target, node.value, node.annotation
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                attr = target.attr
                leaf = _annotation_leaf(annotation)
                if leaf:
                    symbol.attr_types[attr] = leaf
                if isinstance(value, ast.Call):
                    callee = dotted_name(value.func).rsplit(".", 1)[-1]
                    if callee in UNPICKLABLE_FACTORIES:
                        symbol.unpicklable_attrs[attr] = callee
                    elif callee and callee[0].isupper() and attr not in symbol.attr_types:
                        symbol.attr_types[attr] = callee
                elif (
                    isinstance(value, ast.Name)
                    and value.id in param_types
                    and attr not in symbol.attr_types
                ):
                    symbol.attr_types[attr] = param_types[value.id]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def iter_functions(self) -> Iterator[FunctionSymbol]:
        for module in self.modules.values():
            yield from module.functions.values()
            for cls in module.classes.values():
                yield from cls.methods.values()

    def lookup_class(self, name: str) -> ClassSymbol | None:
        """The class by bare name, when the project defines exactly one."""
        candidates = self.classes_by_name.get(name) or []
        return candidates[0] if len(candidates) == 1 else None

    def context_for(self, path: str) -> ModuleContext | None:
        for module in self.modules.values():
            if module.path == path:
                return module.ctx
        return None

    # ------------------------------------------------------------------
    # Pickle-reachability (KSP009's type closure)
    # ------------------------------------------------------------------
    def pickle_taint(self) -> dict[str, list[str]]:
        """Class name -> witness chain to an unpicklable attribute.

        A class is *tainted* when its object graph, followed through
        statically-known attribute types, reaches a lock/thread/socket
        value — unless a class on the path defines ``__getstate__`` /
        ``__reduce__`` (it promises to drop the offender before
        pickling, like ``BuildProgress`` does).  The chain is the
        human-readable evidence: ``["KSpin.index", "Index._lock=Lock"]``.
        """
        taint: dict[str, list[str]] = {}
        for classes in self.classes_by_name.values():
            for symbol in classes:
                if symbol.custom_pickle:
                    continue
                for attr, factory in symbol.unpicklable_attrs.items():
                    taint.setdefault(
                        symbol.name, [f"{symbol.name}.{attr} = {factory}()"]
                    )
        # Propagate through attribute types to a fixpoint.
        changed = True
        while changed:
            changed = False
            for classes in self.classes_by_name.values():
                for symbol in classes:
                    if symbol.name in taint or symbol.custom_pickle:
                        continue
                    for attr, type_name in symbol.attr_types.items():
                        if type_name in taint and type_name != symbol.name:
                            taint[symbol.name] = [
                                f"{symbol.name}.{attr}: {type_name}",
                                *taint[type_name],
                            ]
                            changed = True
                            break
        return taint
