"""``repro.analysis`` — the project's static-analysis subsystem.

Three layers, all dependency-free at runtime (``ast`` + ``threading``):

* a **project-invariant linter** (:mod:`~repro.analysis.rules`,
  :mod:`~repro.analysis.project_rules`, :mod:`~repro.analysis.linter`):
  the per-module rules KSP001–KSP007 encode the invariants the serving
  stack's correctness arguments rest on — frozen API values stay
  frozen, shared state is written under its declared lock, nothing
  blocks while holding a lock, fingerprint-reproducible code paths stay
  deterministic, the supervision/IPC tier never swallows exceptions,
  nothing unpicklable crosses the IPC boundary, and batch entry points
  never loop over per-item shims.  The interprocedural rules
  KSP008–KSP011 run over a whole-program symbol table
  (:mod:`~repro.analysis.symbols`) and approximate call graph
  (:mod:`~repro.analysis.callgraph`): no lock-order cycles across call
  chains, transitive picklability of IPC payloads, engine protocol and
  batch-registry conformance, and observability coverage of every HTTP
  route, pipe kind, and CLI verb.  A finding-count ratchet
  (:mod:`~repro.analysis.baseline`, ``analysis-baseline.json``) lets
  debt only ever shrink; findings render as text, JSON, or SARIF 2.1.0
  (:mod:`~repro.analysis.sarif`).  Exposed as ``repro lint``.
* a **strict typing gate** (:mod:`~repro.analysis.typecheck`): a thin
  wrapper over ``mypy --strict`` (pinned dev dependency, configured in
  ``pyproject.toml``).  Exposed as ``repro typecheck``.
* a **runtime lock-order/race detector**
  (:mod:`~repro.analysis.lockdebug`): opt-in via
  ``REPRO_LOCK_DEBUG=1``; builds a global lock-order graph from
  per-thread acquisition stacks, reports ordering cycles (potential
  deadlocks) with both acquisition sites, and write-guards the shared
  attributes declared in :mod:`~repro.analysis.config`.

See ``docs/static-analysis.md`` for the rule catalogue and workflows.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    RatchetResult,
    load_baseline,
    ratchet,
    write_baseline,
)
from repro.analysis.callgraph import CallGraph, Project
from repro.analysis.findings import Finding
from repro.analysis.linter import (
    ALL_RULES,
    RULES_BY_CODE,
    changed_files,
    iter_python_files,
    lint_paths,
    lint_source,
    module_key,
    select_rules,
)
from repro.analysis.project_rules import PROJECT_RULES
from repro.analysis.rules import MODULE_RULES, Rule
from repro.analysis.sarif import render_sarif, to_sarif
from repro.analysis.symbols import ProjectSymbols
from repro.analysis.typecheck import mypy_available, run_typecheck

__all__ = [
    "ALL_RULES",
    "CallGraph",
    "DEFAULT_BASELINE",
    "Finding",
    "MODULE_RULES",
    "PROJECT_RULES",
    "Project",
    "ProjectSymbols",
    "RULES_BY_CODE",
    "RatchetResult",
    "Rule",
    "changed_files",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_key",
    "mypy_available",
    "ratchet",
    "render_sarif",
    "run_typecheck",
    "select_rules",
    "to_sarif",
    "write_baseline",
]
