"""``repro.analysis`` — the project's static-analysis subsystem.

Three layers, all dependency-free at runtime (``ast`` + ``threading``):

* a **project-invariant linter** (:mod:`~repro.analysis.rules`,
  :mod:`~repro.analysis.linter`): KSP001–KSP006 encode the invariants
  the serving stack's correctness arguments rest on — frozen API
  values stay frozen, shared state is written under its declared lock,
  nothing blocks while holding a lock, fingerprint-reproducible code
  paths stay deterministic, the supervision/IPC tier never swallows
  exceptions, and nothing unpicklable crosses the IPC boundary.
  Exposed as ``repro lint``.
* a **strict typing gate** (:mod:`~repro.analysis.typecheck`): a thin
  wrapper over ``mypy --strict`` (pinned dev dependency, configured in
  ``pyproject.toml``).  Exposed as ``repro typecheck``.
* a **runtime lock-order/race detector**
  (:mod:`~repro.analysis.lockdebug`): opt-in via
  ``REPRO_LOCK_DEBUG=1``; builds a global lock-order graph from
  per-thread acquisition stacks, reports ordering cycles (potential
  deadlocks) with both acquisition sites, and write-guards the shared
  attributes declared in :mod:`~repro.analysis.config`.

See ``docs/static-analysis.md`` for the rule catalogue and workflows.
"""

from repro.analysis.findings import Finding
from repro.analysis.linter import (
    iter_python_files,
    lint_paths,
    lint_source,
    module_key,
    select_rules,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_CODE, Rule
from repro.analysis.typecheck import mypy_available, run_typecheck

__all__ = [
    "ALL_RULES",
    "Finding",
    "RULES_BY_CODE",
    "Rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "module_key",
    "mypy_available",
    "run_typecheck",
    "select_rules",
]
