"""The KSP rule catalogue: project invariants as AST checks.

Each rule encodes one invariant the serving stack's correctness
arguments rely on (see ``docs/static-analysis.md`` for the prose
catalogue):

========  ============================================================
KSP001    no mutation of ``repro.api`` frozen-dataclass values
KSP002    writes to declared shared state only under the declared lock
KSP003    no blocking calls while holding a lock
KSP004    no wall-clock/RNG nondeterminism in fingerprint-reproducible
          code paths (NVD build, distance oracles)
KSP005    no bare/swallowed exceptions in the supervision/IPC tier
KSP006    no lambdas or closures in payloads crossing the IPC boundary
KSP007    no ``*_many``/``*_batch`` body looping over a per-item shim
========  ============================================================

Rules are pure functions of a parsed module (:class:`ModuleContext`);
the driver in :mod:`repro.analysis.linter` handles file discovery,
``# ksp: ignore[...]`` suppression and exit codes.  Everything here is
stdlib-only (``ast`` + the registry in :mod:`repro.analysis.config`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis import config
from repro.analysis.findings import Finding

#: Comment contract marking a helper as "caller holds the lock":
#: ``def _unindex(self, key):  # ksp: holds[self._lock]``
HOLDS_MARKER = "ksp: holds"


# ----------------------------------------------------------------------
# Shared per-module analysis context
# ----------------------------------------------------------------------
@dataclass
class ModuleContext:
    """One parsed source file plus the pre-computed facts rules share."""

    path: str
    key: str
    tree: ast.Module
    lines: list[str]
    parents: dict[int, ast.AST] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, key: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, key=key, tree=tree, lines=source.splitlines())
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                ctx.parents[id(child)] = parent
        return ctx

    # -- navigation ----------------------------------------------------
    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(id(node))
        while current is not None:
            yield current
            current = self.parents.get(id(current))

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    # -- lock facts ----------------------------------------------------
    def under_lock(self, node: ast.AST) -> bool:
        """True when ``node`` is lexically inside a lock-holding region.

        A region is a ``with`` statement over a lock expression, or the
        body of a function carrying a ``# ksp: holds[...]`` contract
        comment (a helper documented as "caller holds the lock").
        """
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                if any(
                    is_lock_expr(item.context_expr)
                    for item in ancestor.items
                ):
                    return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if HOLDS_MARKER in self.line_text(ancestor.lineno):
                    return True
        return False

    def lock_withs(self) -> Iterator[ast.With]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)) and any(
                is_lock_expr(item.context_expr) for item in node.items
            ):
                yield node


# ----------------------------------------------------------------------
# Expression helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str:
    """Flatten ``a.b.c`` / ``a.b.c(...)`` to ``"a.b.c"`` (best effort)."""
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def is_lock_expr(node: ast.AST) -> bool:
    """Heuristic: is this ``with`` context expression a lock?

    Matches lock-named attributes (``self._lock``, ``self._update_lock``,
    ``self._mutex``) and readers-writer acquisitions
    (``lock.read()`` / ``lock.write()`` / ``read_locked(...)``).
    """
    name = dotted_name(node).lower()
    if not name:
        return False
    leaf = name.rsplit(".", 1)[-1]
    if "lock" in name or "mutex" in name:
        return True
    if isinstance(node, ast.Call) and leaf in ("read", "write"):
        base = dotted_name(node.func).lower()
        return "lock" in base or "rw" in base
    return leaf in ("read_locked", "write_locked")


def _is_self_attribute(node: ast.AST, attrs: frozenset[str]) -> str | None:
    """``self.<attr>`` (or a subscript of it) for a guarded attr, else None."""
    target = node
    while isinstance(target, ast.Subscript):
        target = target.value
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
        and target.attr in attrs
    ):
        return target.attr
    return None


def _finding(
    ctx: ModuleContext, node: ast.AST, code: str, message: str
) -> Finding:
    return Finding(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
    )


# ----------------------------------------------------------------------
# Rule protocol
# ----------------------------------------------------------------------
class Rule:
    """Base class: one code, one invariant, one check pass.

    A rule participates at one (or both) of two granularities:
    ``check`` sees a single parsed module and runs once per file;
    ``project_check`` sees the whole-program :class:`~repro.analysis.
    callgraph.Project` (symbol table + call graph) and runs once per
    lint invocation — the interprocedural rules KSP008–KSP011 live
    there.  Either hook may be left as the empty default.
    """

    code: str = "KSP000"
    title: str = ""

    def applies(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def project_check(self, project: object) -> Iterator[Finding]:
        return iter(())


# ----------------------------------------------------------------------
# KSP001 — frozen dataclass mutation
# ----------------------------------------------------------------------
class FrozenMutationRule(Rule):
    """``repro.api`` value types are frozen: never assign their fields.

    Detects attribute assignment / augmented assignment / deletion on
    names inferred (from constructor calls and annotations) to hold a
    :data:`~repro.analysis.config.FROZEN_API_TYPES` instance, and any
    ``object.__setattr__`` outside a frozen dataclass's own
    ``__post_init__``.
    """

    code = "KSP001"
    title = "mutation of a frozen repro.api dataclass"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, func)
        yield from self._check_setattr(ctx)

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _frozen_type_name(annotation: ast.AST | None) -> bool:
        if annotation is None:
            return False
        name = dotted_name(annotation).rsplit(".", 1)[-1]
        return name in config.FROZEN_API_TYPES

    def _frozen_locals(self, func: ast.AST) -> set[str]:
        names: set[str] = set()
        args = getattr(func, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if self._frozen_type_name(arg.annotation):
                    names.add(arg.arg)
        for node in ast.walk(func):
            value = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign):
                value, targets = node.value, [node.target]
                if self._frozen_type_name(node.annotation):
                    if isinstance(node.target, ast.Name):
                        names.add(node.target.id)
            if value is not None and isinstance(value, ast.Call):
                callee = dotted_name(value.func).rsplit(".", 1)[-1]
                if callee in config.FROZEN_API_TYPES:
                    for target in targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    def _check_function(
        self, ctx: ModuleContext, func: ast.AST
    ) -> Iterator[Finding]:
        frozen = self._frozen_locals(func)
        if not frozen:
            return
        for node in ast.walk(func):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in frozen
                ):
                    yield _finding(
                        ctx,
                        node,
                        self.code,
                        f"mutates field {target.attr!r} of frozen api value "
                        f"{target.value.id!r} (frozen dataclasses are "
                        "immutable by contract: build a new value instead)",
                    )

    def _check_setattr(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) != "object.__setattr__":
                continue
            func = ctx.enclosing_function(node)
            if (
                func is not None
                and func.name in ("__init__", "__post_init__")
                and self._in_frozen_dataclass(ctx, func)
            ):
                continue  # the frozen class's own construction
            yield _finding(
                ctx,
                node,
                self.code,
                "object.__setattr__ outside a frozen dataclass's own "
                "construction (__init__/__post_init__) defeats immutability",
            )

    @staticmethod
    def _in_frozen_dataclass(ctx: ModuleContext, func: ast.AST) -> bool:
        cls = ctx.enclosing_class(func)
        if cls is None:
            return False
        for decorator in cls.decorator_list:
            if dotted_name(decorator).rsplit(".", 1)[-1] != "dataclass":
                continue
            if isinstance(decorator, ast.Call):
                for kw in decorator.keywords:
                    if (
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
        return False


# ----------------------------------------------------------------------
# KSP002 — shared-state writes outside the declared lock
# ----------------------------------------------------------------------
class UnlockedSharedWriteRule(Rule):
    """Declared shared attributes may only be written under their lock.

    Driven by :data:`~repro.analysis.config.GUARDED_ATTRIBUTES`;
    ``__init__`` is exempt (the object is not yet shared), and helpers
    whose ``def`` line carries ``# ksp: holds[...]`` are trusted to be
    called with the lock held.
    """

    code = "KSP002"
    title = "write to shared state outside its declared lock"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.key in config.GUARDED_ATTRIBUTES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        by_class = config.GUARDED_ATTRIBUTES[ctx.key]
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef) or cls.name not in by_class:
                continue
            attrs = by_class[cls.name]
            for node in ast.walk(cls):
                func = ctx.enclosing_function(node)
                if func is None or func.name == "__init__":
                    continue
                yield from self._check_node(ctx, node, attrs)

    def _check_node(
        self, ctx: ModuleContext, node: ast.AST, attrs: frozenset[str]
    ) -> Iterator[Finding]:
        written: str | None = None
        if isinstance(node, ast.Assign):
            for target in node.targets:
                written = _is_self_attribute(target, attrs)
                if written:
                    break
        elif isinstance(node, ast.AugAssign):
            written = _is_self_attribute(node.target, attrs)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                written = _is_self_attribute(target, attrs)
                if written:
                    break
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in config.MUTATING_METHODS:
                written = _is_self_attribute(node.func.value, attrs)
        if written and not ctx.under_lock(node):
            yield _finding(
                ctx,
                node,
                self.code,
                f"write to shared attribute 'self.{written}' outside its "
                "declared lock (wrap in the guarding 'with <lock>' block, "
                "or mark the helper '# ksp: holds[...]' if the caller "
                "holds it)",
            )


# ----------------------------------------------------------------------
# KSP003 — blocking calls while holding a lock
# ----------------------------------------------------------------------
class BlockingUnderLockRule(Rule):
    """A blocking call under a lock turns slowness into a stall for all.

    Flags :data:`~repro.analysis.config.BLOCKING_CALLS` (sleeps, pipe
    ``recv``/``poll``, subprocess spawns, ``select``) lexically inside a
    ``with <lock>`` block.
    """

    code = "KSP003"
    title = "blocking call while holding a lock"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for with_node in ctx.lock_withs():
            for node in ast.walk(with_node):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                leaf = name.rsplit(".", 1)[-1]
                if (
                    name in config.BLOCKING_CALLS
                    or leaf in config.BLOCKING_CALLS
                ):
                    yield _finding(
                        ctx,
                        node,
                        self.code,
                        f"blocking call {name or leaf!r} while holding a "
                        "lock stalls every other thread waiting on it",
                    )


# ----------------------------------------------------------------------
# KSP004 — nondeterminism in reproducible code paths
# ----------------------------------------------------------------------
class NondeterminismRule(Rule):
    """NVD build and distance-oracle code must be fingerprint-pure.

    Wall-clock reads and global-RNG draws in these modules make
    ``structural_fingerprint`` comparisons (parallel build vs serial,
    rehydrated worker vs parent) meaningless.  Seeded
    ``random.Random(seed)`` instances are fine.
    """

    code = "KSP004"
    title = "nondeterminism in a fingerprint-reproducible code path"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.key.startswith(config.REPRODUCIBLE_PREFIXES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            if name in config.NONDETERMINISTIC_CALLS:
                yield self._report(ctx, node, name)
                continue
            for prefix in config.NONDETERMINISTIC_PREFIXES:
                if name.startswith(prefix):
                    leaf = name[len(prefix):]
                    # random.Random(seed) is the *seeded* escape hatch.
                    if leaf and leaf[0].isupper():
                        break
                    yield self._report(ctx, node, name)
                    break

    def _report(self, ctx: ModuleContext, node: ast.AST, name: str) -> Finding:
        return _finding(
            ctx,
            node,
            self.code,
            f"{name}() in a reproducible code path breaks fingerprint "
            "equality (thread seeds/timestamps in as parameters instead)",
        )


# ----------------------------------------------------------------------
# KSP005 — swallowed exceptions in the supervision/IPC tier
# ----------------------------------------------------------------------
class SwallowedExceptionRule(Rule):
    """Supervision and IPC code must account for every exception.

    Flags bare ``except:`` anywhere in the tier, and ``except
    Exception/BaseException`` handlers whose whole body is ``pass`` /
    ``...`` / ``continue`` — a silently-eaten worker death is an
    unexplained hang later.
    """

    code = "KSP005"
    title = "swallowed exception in the supervision/IPC tier"

    _SWALLOWING = ("pass", "continue", "ellipsis")

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.key in config.IPC_TIER

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield _finding(
                    ctx,
                    node,
                    self.code,
                    "bare 'except:' in the supervision/IPC tier catches "
                    "SystemExit/KeyboardInterrupt and hides worker deaths",
                )
                continue
            caught = dotted_name(node.type).rsplit(".", 1)[-1]
            if caught in ("Exception", "BaseException") and self._swallows(
                node.body
            ):
                yield _finding(
                    ctx,
                    node,
                    self.code,
                    f"'except {caught}' swallowing the error silently: "
                    "record it (counter + message) so supervision "
                    "failures are observable",
                )

    @staticmethod
    def _swallows(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or ...
            return False
        return True


# ----------------------------------------------------------------------
# KSP006 — closures over the IPC boundary
# ----------------------------------------------------------------------
class ClosureOverIpcRule(Rule):
    """Payloads crossing a pipe must pickle: no lambdas, no closures.

    Under the fork start method an unpicklable payload works by
    accident until the first spawn-mode restart replays it.  Flags
    lambdas (and references to locally-defined functions) in the
    arguments of pipe sends / worker requests / ``Process(...)``
    constructions within the serving tier.
    """

    code = "KSP006"
    title = "lambda or closure in an IPC payload"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.key.startswith(config.IPC_PREFIX)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func).rsplit(".", 1)[-1]
            if callee not in config.IPC_SEND_METHODS:
                continue
            local_defs = self._local_function_names(ctx, node)
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Lambda):
                        yield _finding(
                            ctx,
                            sub,
                            self.code,
                            f"lambda in a {callee!r} payload cannot pickle "
                            "across the IPC boundary (send data, not code)",
                        )
                    elif (
                        isinstance(sub, ast.Name)
                        and sub.id in local_defs
                    ):
                        yield _finding(
                            ctx,
                            sub,
                            self.code,
                            f"closure {sub.id!r} in a {callee!r} payload "
                            "cannot pickle across the IPC boundary "
                            "(module-level functions only)",
                        )

    @staticmethod
    def _local_function_names(ctx: ModuleContext, node: ast.AST) -> set[str]:
        func = ctx.enclosing_function(node)
        if func is None:
            return set()
        return {
            stmt.name
            for stmt in ast.walk(func)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt is not func
        }


# ----------------------------------------------------------------------
# KSP007 — batch entry points looping over per-item shims
# ----------------------------------------------------------------------
class BatchShimLoopRule(Rule):
    """``*_many``/``*_batch`` bodies must not loop over per-item shims.

    A batch entry point that calls the public per-item surface
    (:data:`~repro.analysis.config.PER_ITEM_SHIMS`) once per loop
    iteration silently re-serialises the batch — per-item lock
    acquisitions, cache probes, and IPC round trips — while its name
    promises amortised execution.  The sanctioned sequential fallback
    lives in one explicitly-named helper (``execute_many_sequential``,
    deliberately outside the ``*_many`` suffix) or carries a
    ``# ksp: ignore[KSP007]`` on the looping line.

    Only the *per-iteration* region is inspected: a per-item call in a
    ``for`` statement's iterable (evaluated once) or a comprehension's
    first iterable is not a violation.
    """

    code = "KSP007"
    title = "per-item shim call looped inside a batch entry point"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not func.name.endswith(config.BATCH_SUFFIXES):
                continue
            yield from self._check_batch_function(ctx, func)

    def _check_batch_function(
        self, ctx: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        reported: set[int] = set()
        for node in self._per_iteration_nodes(func):
            if id(node) in reported:
                continue
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            shim = node.func.attr
            if shim not in config.PER_ITEM_SHIMS:
                continue
            reported.add(id(node))
            yield _finding(
                ctx,
                node,
                self.code,
                f"batch entry point {func.name!r} loops over per-item "
                f"shim {shim!r}: this re-serialises the batch one query "
                "at a time — use the batch API (or delegate to "
                "execute_many_sequential, the named sequential fallback)",
            )

    @staticmethod
    def _per_iteration_nodes(func: ast.AST) -> Iterator[ast.AST]:
        """Every node evaluated once *per loop iteration* inside ``func``."""
        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                for stmt in list(node.body) + list(node.orelse):
                    yield from ast.walk(stmt)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
            ):
                yield from ast.walk(node.elt)
                for comp in node.generators:
                    for condition in comp.ifs:
                        yield from ast.walk(condition)
            elif isinstance(node, ast.DictComp):
                yield from ast.walk(node.key)
                yield from ast.walk(node.value)
                for comp in node.generators:
                    for condition in comp.ifs:
                        yield from ast.walk(condition)


#: The per-module half of the catalogue, in order.  The interprocedural
#: rules (KSP008–KSP011) live in :mod:`repro.analysis.project_rules`;
#: the combined registry is :data:`repro.analysis.linter.ALL_RULES`.
MODULE_RULES: tuple[Rule, ...] = (
    FrozenMutationRule(),
    UnlockedSharedWriteRule(),
    BlockingUnderLockRule(),
    NondeterminismRule(),
    SwallowedExceptionRule(),
    ClosureOverIpcRule(),
    BatchShimLoopRule(),
)
