"""The finding-count ratchet: lint debt may only ever shrink.

``analysis-baseline.json`` at the repository root records, per rule
code, how many findings the tree is currently allowed to carry.  The
gate (``repro lint --ratchet``) fails when any rule's live count rises
above its baselined count — new debt never lands — and *auto-shrinks*
the baseline file whenever counts fall, so an improvement is locked in
by the very run that observes it (commit the rewritten file with the
fix).  Counts, not line numbers, are the contract: findings keyed by
position would churn on every unrelated edit above them.

The file also carries the rendered findings snapshot purely for human
review (``git diff`` on the baseline shows *which* debt moved); the
gate never reads it.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding

#: Default location: the repository root, next to ``pyproject.toml``.
DEFAULT_BASELINE = "analysis-baseline.json"

_VERSION = 1


def _counts(findings: Sequence[Finding]) -> dict[str, int]:
    return dict(sorted(Counter(f.code for f in findings).items()))


def _snapshot(findings: Sequence[Finding], root: Path) -> list[str]:
    rendered = []
    for finding in sorted(findings):
        path = Path(finding.path)
        try:
            shown = path.resolve().relative_to(root.resolve())
        except ValueError:
            shown = path
        rendered.append(f"{shown}: {finding.code} {finding.message}")
    return rendered


def write_baseline(
    path: Path, findings: Sequence[Finding], root: Path | None = None
) -> dict[str, object]:
    """(Re)create the baseline file from the current findings."""
    payload: dict[str, object] = {
        "version": _VERSION,
        "counts": _counts(findings),
        "findings": _snapshot(findings, root or path.parent),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def load_baseline(path: Path) -> dict[str, int]:
    """The per-rule allowance; a missing file allows nothing."""
    if not path.exists():
        return {}
    payload = json.loads(path.read_text(encoding="utf-8"))
    counts = payload.get("counts", {})
    return {str(code): int(count) for code, count in counts.items()}


@dataclass
class RatchetResult:
    """Outcome of one gate evaluation."""

    ok: bool
    #: code -> (live, allowed) for rules that rose above their allowance
    regressions: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: code -> (live, allowed) for rules that fell below it
    improvements: dict[str, tuple[int, int]] = field(default_factory=dict)
    shrunk: bool = False

    def summary(self) -> str:
        lines = []
        for code, (live, allowed) in sorted(self.regressions.items()):
            lines.append(
                f"ratchet: {code} rose to {live} finding(s), baseline "
                f"allows {allowed} — fix the new finding(s), do not "
                "baseline them"
            )
        for code, (live, allowed) in sorted(self.improvements.items()):
            lines.append(
                f"ratchet: {code} fell to {live} finding(s) from {allowed}"
                + (" — baseline auto-shrunk, commit it" if self.shrunk else "")
            )
        if not lines:
            lines.append("ratchet: all rule counts at or below baseline")
        return "\n".join(lines)


def ratchet(
    findings: Sequence[Finding],
    baseline_path: Path,
    update: bool = True,
    root: Path | None = None,
) -> RatchetResult:
    """Gate ``findings`` against the baseline; auto-shrink on improvement.

    The baseline is rewritten (when ``update`` is true) only when every
    rule is at or below its allowance and at least one is strictly
    below — a failing gate never modifies the file, so a red CI run
    leaves the working tree clean.
    """
    allowed = load_baseline(baseline_path)
    live = _counts(findings)
    result = RatchetResult(ok=True)
    for code in sorted(set(allowed) | set(live)):
        have = live.get(code, 0)
        cap = allowed.get(code, 0)
        if have > cap:
            result.regressions[code] = (have, cap)
        elif have < cap:
            result.improvements[code] = (have, cap)
    result.ok = not result.regressions
    if result.ok and result.improvements and update:
        write_baseline(baseline_path, findings, root=root)
        result.shrunk = True
    return result
