"""SARIF 2.1.0 rendering of lint findings.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/>`_ is the
interchange format code-scanning UIs ingest (GitHub's security tab,
VS Code's SARIF viewer): emitting it makes ``repro lint`` findings show
up as annotations on the PR diff instead of a wall of text in a CI log.
Only the mandatory skeleton is produced — one ``run`` with the tool's
rule metadata and one ``result`` per finding, each carrying a physical
location with the repo-relative path — which is exactly the subset
every consumer supports.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL = "warning"


def _relative(path: str, root: Path) -> str:
    try:
        return Path(path).resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return Path(path).as_posix()


def to_sarif(
    findings: Sequence[Finding],
    rules: Sequence[object],
    root: Path | None = None,
) -> dict[str, object]:
    """The SARIF log object for ``findings`` (JSON-ready dict)."""
    base = root or Path.cwd()
    rule_objects = [
        {
            "id": getattr(rule, "code", "KSP000"),
            "name": type(rule).__name__,
            "shortDescription": {"text": getattr(rule, "title", "")},
            "defaultConfiguration": {"level": _LEVEL},
        }
        for rule in rules
    ]
    results = [
        {
            "ruleId": finding.code,
            "level": _LEVEL,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative(finding.path, base),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in sorted(findings)
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rule_objects,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding],
    rules: Sequence[object],
    root: Path | None = None,
) -> str:
    return json.dumps(to_sarif(findings, rules, root=root), indent=2)
