"""The ``repro typecheck`` verb: a thin gate over ``mypy --strict``.

The project's typing gate is mypy (pinned as an optional dev
dependency: ``pip install -e .[dev]``); configuration lives in
``pyproject.toml`` (``[tool.mypy]`` — globally strict, with a ratchet
of per-module relaxations for legacy modules that are burned down over
time).  This wrapper exists so:

* the CLI surface is uniform (``repro lint`` / ``repro typecheck``);
* a bare checkout without dev dependencies degrades loudly but
  gracefully (skip + instructions) instead of crashing — the stdlib
  linter still runs everywhere;
* CI can pass ``--require`` to turn "mypy missing" into a hard failure.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from typing import Sequence

#: Exit code for "gate could not run" (distinct from mypy's 1/2).
EXIT_UNAVAILABLE = 3


def mypy_available() -> bool:
    """Whether the pinned dev dependency is importable."""
    return importlib.util.find_spec("mypy") is not None


def run_typecheck(
    paths: Sequence[str],
    strict: bool = True,
    require: bool = False,
) -> int:
    """Run ``mypy`` over ``paths``; returns the process exit code.

    Without mypy installed: prints how to get it and returns 0 (soft
    skip) or :data:`EXIT_UNAVAILABLE` when ``require`` is set (CI).
    """
    if not mypy_available():
        print(
            "repro typecheck: SKIPPED — mypy is not installed in this "
            "environment.\n"
            "  install the pinned dev toolchain:  pip install -e .[dev]\n"
            "  then re-run:                       repro typecheck",
            file=sys.stderr,
        )
        return EXIT_UNAVAILABLE if require else 0
    command = [sys.executable, "-m", "mypy"]
    if strict:
        command.append("--strict")
    command.extend(paths)
    completed = subprocess.run(command, check=False)
    return completed.returncode
