"""The ``repro lint`` driver: file discovery, suppression, reporting.

Stdlib-only (``ast`` + ``pathlib``): the linter must run in a bare
checkout with no dev dependencies installed, because it *is* the
dependency-free half of the static-analysis gate (the other half,
``repro typecheck``, shells out to mypy when available).

Suppression
-----------
A finding is suppressed by a trailing comment on the flagged line::

    self.conn.recv()  # ksp: ignore[KSP003] request/reply pipe discipline

``# ksp: ignore`` with no code list suppresses every rule on that line;
with a bracketed list it suppresses exactly those codes.

Scope markers
-------------
Path-scoped rules (shared-state locks, reproducible paths, the IPC
tier) key off the file's path relative to the ``repro`` package.  A
file outside the package — e.g. a rule fixture under
``tests/fixtures/lint/`` — opts into a scope with a marker in its first
ten lines::

    # ksp: scope=serve/cluster.py
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES, ModuleContext, Rule

_IGNORE_RE = re.compile(
    r"#\s*ksp:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)
_SCOPE_RE = re.compile(r"#\s*ksp:\s*scope=(?P<key>[\w./-]+)")

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


def module_key(path: Path) -> str:
    """The config key for ``path``: its location inside the package.

    ``src/repro/serve/cluster.py`` -> ``serve/cluster.py``; files not
    under a ``repro`` directory key as their bare filename (scope
    markers can override either way).
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return path.name


def _scope_override(source: str) -> str | None:
    for line in source.splitlines()[:10]:
        match = _SCOPE_RE.search(line)
        if match:
            return match.group("key")
    return None


def _suppressed(line_text: str, code: str) -> bool:
    match = _IGNORE_RE.search(line_text)
    if not match:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    return code in {token.strip() for token in codes.split(",")}


def iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_source(
    source: str,
    path: str = "<string>",
    key: str | None = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> list[Finding]:
    """Lint one source string; the unit every file and test goes through."""
    effective_key = _scope_override(source) or key or Path(path).name
    try:
        ctx = ModuleContext.parse(path, effective_key, source)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                code="KSP000",
                message=f"syntax error: {error.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if not _suppressed(ctx.line_text(finding.line), finding.code):
                findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: Sequence[Path | str],
    rules: Sequence[Rule] = ALL_RULES,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; findings sorted by location."""
    findings: list[Finding] = []
    for file_path in iter_python_files(Path(p) for p in paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(
            lint_source(
                source,
                path=str(file_path),
                key=module_key(file_path),
                rules=rules,
            )
        )
    return sorted(findings)


def select_rules(codes: Iterable[str] | None) -> list[Rule]:
    """The rule subset for ``--select`` (all rules when ``codes`` is None)."""
    if not codes:
        return list(ALL_RULES)
    wanted = {code.strip().upper() for code in codes}
    unknown = wanted - {rule.code for rule in ALL_RULES}
    if unknown:
        raise ValueError(f"unknown rule codes: {', '.join(sorted(unknown))}")
    return [rule for rule in ALL_RULES if rule.code in wanted]
