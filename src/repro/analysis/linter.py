"""The ``repro lint`` driver: file discovery, suppression, reporting.

Stdlib-only (``ast`` + ``pathlib``): the linter must run in a bare
checkout with no dev dependencies installed, because it *is* the
dependency-free half of the static-analysis gate (the other half,
``repro typecheck``, shells out to mypy when available).

Suppression
-----------
A finding is suppressed by a trailing comment on the flagged line::

    self.conn.recv()  # ksp: ignore[KSP003] request/reply pipe discipline

``# ksp: ignore`` with no code list suppresses every rule on that line;
with a bracketed list it suppresses exactly those codes.

Scope markers
-------------
Path-scoped rules (shared-state locks, reproducible paths, the IPC
tier) key off the file's path relative to the ``repro`` package.  A
file outside the package — e.g. a rule fixture under
``tests/fixtures/lint/`` — opts into a scope with a marker in its first
ten lines::

    # ksp: scope=serve/cluster.py
"""

from __future__ import annotations

import re
import subprocess
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.callgraph import Project
from repro.analysis.findings import Finding
from repro.analysis.project_rules import PROJECT_RULES
from repro.analysis.rules import MODULE_RULES, ModuleContext, Rule

#: The full catalogue: per-module rules then interprocedural rules.
ALL_RULES: tuple[Rule, ...] = tuple(MODULE_RULES) + tuple(PROJECT_RULES)

RULES_BY_CODE: dict[str, Rule] = {rule.code: rule for rule in ALL_RULES}

_IGNORE_RE = re.compile(
    r"#\s*ksp:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)
_SCOPE_RE = re.compile(r"#\s*ksp:\s*scope=(?P<key>[\w./-]+)")

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


def module_key(path: Path) -> str:
    """The config key for ``path``: its location inside the package.

    ``src/repro/serve/cluster.py`` -> ``serve/cluster.py``; files not
    under a ``repro`` directory key as their bare filename (scope
    markers can override either way).
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return path.name


def _scope_override(source: str) -> str | None:
    for line in source.splitlines()[:10]:
        match = _SCOPE_RE.search(line)
        if match:
            return match.group("key")
    return None


def _suppressed(line_text: str, code: str) -> bool:
    match = _IGNORE_RE.search(line_text)
    if not match:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    return code in {token.strip() for token in codes.split(",")}


def iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _parse_module(
    source: str, path: str, key: str | None
) -> ModuleContext | Finding:
    effective_key = _scope_override(source) or key or Path(path).name
    try:
        return ModuleContext.parse(path, effective_key, source)
    except SyntaxError as error:
        return Finding(
            path=path,
            line=error.lineno or 1,
            col=(error.offset or 1) - 1,
            code="KSP000",
            message=f"syntax error: {error.msg}",
        )


def _run_rules(
    contexts: Sequence[ModuleContext], rules: Sequence[Rule]
) -> list[Finding]:
    """Per-module rules on each context, interprocedural rules once.

    Both passes share the suppression contract: a ``# ksp: ignore``
    trailing comment on the flagged line silences the finding, looked
    up through whichever parsed module the finding points into.
    """
    by_path = {ctx.path: ctx for ctx in contexts}
    findings: list[Finding] = []
    for ctx in contexts:
        for rule in rules:
            if not rule.applies(ctx):
                continue
            for finding in rule.check(ctx):
                if not _suppressed(ctx.line_text(finding.line), finding.code):
                    findings.append(finding)
    project = Project.build(list(contexts))
    for rule in rules:
        for finding in rule.project_check(project):
            ctx = by_path.get(finding.path)
            line = ctx.line_text(finding.line) if ctx else ""
            if not _suppressed(line, finding.code):
                findings.append(finding)
    return sorted(findings)


def lint_source(
    source: str,
    path: str = "<string>",
    key: str | None = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> list[Finding]:
    """Lint one source string as a single-module project."""
    parsed = _parse_module(source, path, key)
    if isinstance(parsed, Finding):
        return [parsed]
    return _run_rules([parsed], rules)


def lint_paths(
    paths: Sequence[Path | str],
    rules: Sequence[Rule] = ALL_RULES,
    changed_only: set[Path] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` as one whole program.

    All files are parsed into one project — the interprocedural rules
    need the complete symbol table and call graph regardless of what
    changed — but when ``changed_only`` is given (``--changed``), only
    findings located in those files are reported: the analysis stays
    whole-program, the *report* is diff-sized.
    """
    contexts: list[ModuleContext] = []
    findings: list[Finding] = []
    for file_path in iter_python_files(Path(p) for p in paths):
        source = file_path.read_text(encoding="utf-8")
        parsed = _parse_module(source, str(file_path), module_key(file_path))
        if isinstance(parsed, Finding):
            findings.append(parsed)
        else:
            contexts.append(parsed)
    findings.extend(_run_rules(contexts, rules))
    if changed_only is not None:
        resolved = {p.resolve() for p in changed_only}
        findings = [
            f for f in findings if Path(f.path).resolve() in resolved
        ]
    return sorted(findings)


def changed_files(ref: str = "HEAD", root: Path | None = None) -> set[Path]:
    """Python files changed relative to ``ref``, plus untracked ones.

    Backs ``repro lint --changed``: committed + working-tree changes
    against the ref's tree, and untracked files (a brand-new module must
    not dodge the gate).  Raises ``RuntimeError`` when git is unusable —
    the caller falls back to a full-report run rather than silently
    passing.
    """
    cwd = root or Path.cwd()
    changed: set[Path] = set()
    commands = (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    for command in commands:
        try:
            completed = subprocess.run(
                command,
                cwd=cwd,
                capture_output=True,
                text=True,
                check=True,
                timeout=30,
            )
        except (OSError, subprocess.SubprocessError) as error:
            raise RuntimeError(
                f"cannot determine changed files ({' '.join(command)}): {error}"
            ) from error
        for line in completed.stdout.splitlines():
            name = line.strip()
            if name.endswith(".py"):
                changed.add((cwd / name).resolve())
    return changed


def select_rules(codes: Iterable[str] | None) -> list[Rule]:
    """The rule subset for ``--select`` (all rules when ``codes`` is None)."""
    if not codes:
        return list(ALL_RULES)
    wanted = {code.strip().upper() for code in codes}
    unknown = wanted - {rule.code for rule in ALL_RULES}
    if unknown:
        raise ValueError(f"unknown rule codes: {', '.join(sorted(unknown))}")
    return [rule for rule in ALL_RULES if rule.code in wanted]
