"""Runtime lock-order and race detection (``REPRO_LOCK_DEBUG=1``).

The static rules in :mod:`repro.analysis.rules` see one function at a
time; deadlocks are a *global* property of acquisition order across
threads.  This module closes the gap with an opt-in runtime mode:

* every instrumented lock acquisition records the acquiring thread's
  call site and adds a ``held -> acquired`` edge to a global
  **lock-order graph**; a cycle in that graph is a potential deadlock,
  reported with the ``file:line`` of *both* acquisition sites on every
  edge of the cycle;
* the shared attributes declared in
  :data:`repro.analysis.config.WATCHED_ATTRIBUTES` can be wrapped in
  write-guard descriptors that report any write performed while the
  declared lock is not held by the writing thread.

Zero cost when off: :func:`make_lock` returns a plain
``threading.Lock``/``RLock`` unless debugging was enabled *before* the
lock was created, so the serving hot path never pays for the
instrumentation it is not using.  Enable with the environment variable
``REPRO_LOCK_DEBUG=1`` (read at import) or programmatically via
:func:`enable` before constructing engines.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Iterator

__all__ = [
    "DebugLock",
    "cycles",
    "disable",
    "enable",
    "enabled",
    "held_locks",
    "instrument",
    "make_lock",
    "note_acquire",
    "note_release",
    "report",
    "reset",
    "uninstrument",
    "violations",
]

_state_lock = threading.Lock()
_enabled = os.environ.get("REPRO_LOCK_DEBUG", "") not in ("", "0", "false")
_holder = threading.local()

#: (held lock id, acquired lock id) -> (held name, held site,
#:  acquired name, acquired site) — the first observation wins, so
#: reports point at the code path that introduced the ordering.
_edges: dict[tuple[int, int], tuple[str, str, str, str]] = {}
#: lock id -> name (for cycle rendering after locks are garbage).
_names: dict[int, str] = {}
#: recorded guarded-write violations, as rendered report lines.
_violations: list[str] = []
#: classes instrumented by :func:`instrument`, for :func:`uninstrument`.
_patched: list[tuple[type, str, object]] = []


# ----------------------------------------------------------------------
# Mode switches
# ----------------------------------------------------------------------
def enabled() -> bool:
    """Whether lock debugging is currently on."""
    return _enabled


def enable(fresh: bool = True) -> None:
    """Turn lock debugging on (call *before* constructing engines)."""
    global _enabled
    if fresh:
        reset()
    _enabled = True


def disable() -> None:
    """Turn lock debugging off (recorded state is kept until reset)."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Drop every recorded edge, violation, and per-thread held stack."""
    with _state_lock:
        _edges.clear()
        _names.clear()
        _violations.clear()
    _holder.__dict__.pop("held", None)


# ----------------------------------------------------------------------
# Acquisition bookkeeping
# ----------------------------------------------------------------------
def _held_stack() -> list[tuple[int, str, str]]:
    stack = getattr(_holder, "held", None)
    if stack is None:
        stack = []
        _holder.held = stack
    return stack


def _call_site() -> str:
    """``file:line`` of the nearest frame outside the lock machinery."""
    import sys

    frame = sys._getframe(1)
    while frame is not None:
        basename = os.path.basename(frame.f_code.co_filename)
        if basename not in ("lockdebug.py", "locks.py"):
            return f"{basename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


def held_locks() -> frozenset[int]:
    """Ids of the locks the calling thread currently holds."""
    return frozenset(lock_id for lock_id, _, _ in _held_stack())


def note_acquire(lock: object, name: str | None = None) -> None:
    """Record that the calling thread acquired ``lock`` (debug mode)."""
    if not _enabled:
        return
    site = _call_site()
    label = name or f"lock@{id(lock):x}"
    stack = _held_stack()
    with _state_lock:
        _names[id(lock)] = label
        for held_id, held_name, held_site in stack:
            if held_id == id(lock):
                continue  # re-entrant acquisition: no self edges
            edge = (held_id, id(lock))
            if edge not in _edges:
                _edges[edge] = (held_name, held_site, label, site)
    stack.append((id(lock), label, site))


def note_release(lock: object) -> None:
    """Record that the calling thread released ``lock`` (debug mode)."""
    if not _enabled:
        return
    stack = _held_stack()
    for index in range(len(stack) - 1, -1, -1):
        if stack[index][0] == id(lock):
            del stack[index]
            return


def note_guard_violation(message: str) -> None:
    """Record one guarded-write violation (used by the descriptors)."""
    with _state_lock:
        _violations.append(message)


# ----------------------------------------------------------------------
# Cycle detection / reporting
# ----------------------------------------------------------------------
def _adjacency() -> dict[int, list[int]]:
    graph: dict[int, list[int]] = {}
    for source, target in _edges:
        graph.setdefault(source, []).append(target)
    return graph


def cycles() -> list[list[tuple[int, int]]]:
    """Every elementary cycle in the observed lock-order graph.

    Each cycle is a list of edges ``(held_id, acquired_id)``; render
    with :func:`report`.  Detection is a DFS per node — the graphs here
    are tiny (one node per lock object).
    """
    with _state_lock:
        graph = _adjacency()
        found: list[list[tuple[int, int]]] = []
        seen_cycles: set[frozenset[tuple[int, int]]] = set()
        for start in graph:
            path: list[int] = [start]
            edge_path: list[tuple[int, int]] = []

            def dfs(node: int) -> None:
                for target in graph.get(node, ()):
                    edge = (node, target)
                    if target == start:
                        cycle = edge_path + [edge]
                        key = frozenset(cycle)
                        if key not in seen_cycles:
                            seen_cycles.add(key)
                            found.append(cycle)
                        continue
                    if target in path:
                        continue
                    path.append(target)
                    edge_path.append(edge)
                    dfs(target)
                    edge_path.pop()
                    path.pop()

            dfs(start)
        return found


def violations() -> list[str]:
    """Guarded-write violations recorded so far."""
    with _state_lock:
        return list(_violations)


def report() -> str:
    """Human-readable report: every cycle edge with both ``file:line``
    acquisition sites, plus any guarded-write violations."""
    lines: list[str] = []
    found = cycles()
    with _state_lock:
        edges = dict(_edges)
    for cycle in found:
        lines.append("potential deadlock (lock-order cycle):")
        for held_id, acquired_id in cycle:
            held_name, held_site, acq_name, acq_site = edges[
                (held_id, acquired_id)
            ]
            lines.append(
                f"  holding {held_name!r} (acquired at {held_site}) "
                f"-> acquires {acq_name!r} at {acq_site}"
            )
    for violation in violations():
        lines.append(f"unguarded write: {violation}")
    if not lines:
        return "lock debug: no ordering cycles, no unguarded writes"
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Instrumented locks
# ----------------------------------------------------------------------
class DebugLock:
    """A ``threading.Lock``/``RLock`` that reports to the order graph."""

    __slots__ = ("_inner", "name")

    def __init__(self, name: str, rlock: bool = False) -> None:
        self._inner: Any = (
            threading.RLock() if rlock else threading.Lock()
        )
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            note_acquire(self, self.name)
        return acquired

    def release(self) -> None:
        note_release(self)
        self._inner.release()

    def __enter__(self) -> "DebugLock":
        self.acquire()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.release()


def make_lock(name: str, rlock: bool = False) -> Any:
    """A lock for serving shared state: plain when debug is off.

    The type is decided at *creation* time, so enabling debug after an
    engine is built does not instrument its existing locks — enable
    first (env var or :func:`enable`), then construct.
    """
    if _enabled:
        return DebugLock(name, rlock=rlock)
    return threading.RLock() if rlock else threading.Lock()


# ----------------------------------------------------------------------
# Guarded-attribute descriptors (runtime half of KSP002)
# ----------------------------------------------------------------------
class GuardedAttribute:
    """Data descriptor reporting writes made without the declared lock.

    The first write (object construction) is exempt; later writes check
    that the instance's ``lock_attr`` — when it is an instrumented
    :class:`DebugLock` — is in the writing thread's held set.
    """

    def __init__(self, attr: str, lock_attr: str) -> None:
        self.attr = attr
        self.lock_attr = lock_attr
        self._slot = f"_ksp_guarded_{attr}"

    def __get__(self, obj: object, objtype: type | None = None) -> Any:
        if obj is None:
            return self
        try:
            return obj.__dict__[self._slot]
        except KeyError:
            raise AttributeError(self.attr) from None

    def __set__(self, obj: object, value: Any) -> None:
        if _enabled and self._slot in obj.__dict__:
            lock = getattr(obj, self.lock_attr, None)
            if isinstance(lock, DebugLock) and id(lock) not in held_locks():
                note_guard_violation(
                    f"{type(obj).__name__}.{self.attr} written at "
                    f"{_call_site()} without holding "
                    f"{self.lock_attr!r} ({lock.name})"
                )
        obj.__dict__[self._slot] = value

    def __delete__(self, obj: object) -> None:
        obj.__dict__.pop(self._slot, None)


def instrument() -> list[str]:
    """Install write guards over the declared shared attributes.

    Imports each module in
    :data:`repro.analysis.config.WATCHED_ATTRIBUTES` and replaces the
    listed attributes with :class:`GuardedAttribute` descriptors.
    Returns the list of ``Class.attr`` names instrumented; undo with
    :func:`uninstrument`.
    """
    import importlib

    from repro.analysis import config

    installed: list[str] = []
    for module_name, class_name, lock_attr, attrs in config.WATCHED_ATTRIBUTES:
        module = importlib.import_module(module_name)
        cls = getattr(module, class_name)
        for attr in attrs:
            previous = cls.__dict__.get(attr)
            _patched.append((cls, attr, previous))
            setattr(cls, attr, GuardedAttribute(attr, lock_attr))
            installed.append(f"{class_name}.{attr}")
    return installed


def uninstrument() -> None:
    """Remove every descriptor installed by :func:`instrument`."""
    while _patched:
        cls, attr, previous = _patched.pop()
        if previous is None:
            if attr in cls.__dict__:
                delattr(cls, attr)
        else:
            setattr(cls, attr, previous)


def _iter_edges() -> Iterator[tuple[str, str, str, str]]:  # pragma: no cover
    """Debug helper: the observed edges with names and sites."""
    with _state_lock:
        yield from _edges.values()
