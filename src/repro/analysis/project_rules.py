"""The interprocedural KSP rules: invariants that span module boundaries.

========  ============================================================
KSP008    static lock-order-cycle detection over the may-acquire graph
KSP009    IPC payloads must be *transitively* picklable
KSP010    engine/oracle/baseline protocol conformance + batch registry
KSP011    observability coverage of HTTP routes, pipe kinds, CLI verbs
========  ============================================================

All four run in :meth:`~repro.analysis.rules.Rule.project_check` over
the whole-program :class:`~repro.analysis.callgraph.Project` (symbol
table + approximate call graph) that :func:`repro.analysis.linter.
lint_paths` builds once per invocation.  Checks that need the *real*
modules to be meaningful (staleness of a registry entry, coverage of a
declared surface) only fire when the project actually contains those
modules, so rule fixtures — tiny single-file projects — exercise the
drift direction without dragging in the serving stack.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import config
from repro.analysis.callgraph import CallGraph, CallSite, Project, _local_types
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, is_lock_expr
from repro.analysis.symbols import (
    UNPICKLABLE_FACTORIES,
    ClassSymbol,
    FunctionSymbol,
    ModuleSymbols,
)

#: Method leaves that acquire a lock imperatively (held, conservatively,
#: until the end of the enclosing function — the project idiom pairs
#: them with ``try/finally`` release).
_ACQUIRE_LEAVES = frozenset({"acquire", "acquire_read", "acquire_write"})


def _finding(path: str, line: int, code: str, message: str) -> Finding:
    return Finding(path=path, line=line, col=0, code=code, message=message)


# ----------------------------------------------------------------------
# KSP008 — static lock-order cycles
# ----------------------------------------------------------------------
class _LockRegion:
    """A lexical range of one function during which one lock is held."""

    __slots__ = ("lock_id", "start", "end", "hold_line")

    def __init__(self, lock_id: str, start: int, end: int, hold_line: int):
        self.lock_id = lock_id
        self.start = start
        self.end = end
        self.hold_line = hold_line


class LockOrderCycleRule(Rule):
    """Lift ``lockdebug``'s runtime lock-order check to the call graph.

    Builds the *may-acquire* graph: an edge ``A -> B`` means some code
    path acquires lock ``B`` (a ``with`` block, an ``acquire_*`` call,
    or transitively through any function reachable in the call graph)
    while already holding ``A`` (a ``with`` site or a ``# ksp:
    holds[...]`` contract).  A cycle in that graph is a lock-order
    inversion two threads can interleave into a deadlock; the finding
    prints one acquisition path per edge of the cycle.  Lock identity is
    ``ClassName.attr`` — the same identity the runtime detector uses —
    so re-acquiring the *same* (reentrant) lock never forms an edge.
    """

    code = "KSP008"
    title = "lock-order cycle across the call graph"

    def project_check(self, project: object) -> Iterator[Finding]:
        assert isinstance(project, Project)
        graph = _MayAcquireGraph(project)
        for cycle_edges in graph.cycles():
            first = cycle_edges[0]
            order = " -> ".join(edge.src for edge in cycle_edges)
            order += f" -> {cycle_edges[0].src}"
            paths = "; ".join(
                f"[{edge.src} -> {edge.dst}] {edge.describe()}"
                for edge in cycle_edges
            )
            yield _finding(
                first.path,
                first.hold_line,
                self.code,
                f"lock-order cycle {order}: two threads taking these "
                f"locks in opposite orders can deadlock — {paths}",
            )


class _Edge:
    __slots__ = ("src", "dst", "path", "hold_line", "hops")

    def __init__(
        self, src: str, dst: str, path: str, hold_line: int, hops: list[str]
    ):
        self.src = src
        self.dst = dst
        self.path = path
        self.hold_line = hold_line
        self.hops = hops

    def describe(self) -> str:
        return " -> ".join(self.hops)


class _MayAcquireGraph:
    def __init__(self, project: Project) -> None:
        self.project = project
        self.symbols = project.symbols
        self.callgraph = project.callgraph
        #: qualname -> [(lock_id, line)] locks the function itself takes
        self.direct: dict[str, list[tuple[str, int]]] = {}
        #: qualname -> [_LockRegion] ranges during which a lock is held
        self.regions: dict[str, list[_LockRegion]] = {}
        self._transitive_cache: dict[str, dict[str, list[str]]] = {}
        for fn in self.symbols.iter_functions():
            self._scan_function(fn)
        #: (src, dst) -> _Edge, first witness wins
        self.edges: dict[tuple[str, str], _Edge] = {}
        for fn in self.symbols.iter_functions():
            self._collect_edges(fn)

    # -- per-function lock facts ---------------------------------------
    def _scan_function(self, fn: FunctionSymbol) -> None:
        regions: list[_LockRegion] = []
        direct: list[tuple[str, int]] = []
        end = fn.node.end_lineno or fn.node.lineno
        for contract in fn.holds:
            lock_id = self._contract_identity(contract, fn)
            if lock_id:
                regions.append(
                    _LockRegion(lock_id, fn.node.lineno, end, fn.node.lineno)
                )
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if not is_lock_expr(item.context_expr):
                        continue
                    lock_id = self._lock_identity(item.context_expr, fn)
                    if lock_id is None:
                        continue
                    node_end = node.end_lineno or node.lineno
                    regions.append(
                        _LockRegion(lock_id, node.lineno, node_end, node.lineno)
                    )
                    direct.append((lock_id, node.lineno))
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _ACQUIRE_LEAVES and is_lock_expr(
                    node.func.value
                ):
                    lock_id = self._lock_identity(node.func.value, fn)
                    if lock_id is None:
                        continue
                    regions.append(
                        _LockRegion(lock_id, node.lineno, end, node.lineno)
                    )
                    direct.append((lock_id, node.lineno))
        if regions:
            self.regions[fn.qualname] = regions
        if direct:
            self.direct[fn.qualname] = direct

    def _lock_identity(self, expr: ast.expr, fn: FunctionSymbol) -> str | None:
        node: ast.expr = expr
        if isinstance(node, ast.Call):
            leaf = dotted_name(node.func).rsplit(".", 1)[-1]
            if leaf in ("read", "write") and isinstance(node.func, ast.Attribute):
                node = node.func.value  # self.lock.read() -> self.lock
            elif leaf in ("read_locked", "write_locked") and node.args:
                node = node.args[0]
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            owner = fn.class_name or fn.key
            return f"{owner}.{node.attr}"
        if isinstance(node, ast.Name):
            return f"{fn.key}::{node.id}"
        return None

    def _contract_identity(self, contract: str, fn: FunctionSymbol) -> str | None:
        if contract.startswith("self."):
            owner = fn.class_name or fn.key
            return f"{owner}.{contract[len('self.'):]}"
        return f"{fn.key}::{contract}" if contract else None

    # -- transitive acquisitions ---------------------------------------
    def _transitive(self, qualname: str) -> dict[str, list[str]]:
        """lock_id -> hop descriptions for every lock reachable code takes."""
        cached = self._transitive_cache.get(qualname)
        if cached is not None:
            return cached
        result: dict[str, list[str]] = {}
        for lock_id, line in self.direct.get(qualname, []):
            result.setdefault(lock_id, [f"{qualname}:{line}"])
        for callee, chain in self.callgraph.reachable(qualname).items():
            for lock_id, line in self.direct.get(callee, []):
                if lock_id in result:
                    continue
                hops = [
                    f"{site.callee} (line {site.line})" for site in chain
                ]
                result[lock_id] = [*hops, f"acquires at {callee}:{line}"]
        self._transitive_cache[qualname] = result
        return result

    # -- edges ----------------------------------------------------------
    def _collect_edges(self, fn: FunctionSymbol) -> None:
        regions = self.regions.get(fn.qualname)
        if not regions:
            return
        path = self.symbols.modules[fn.key].path
        for region in regions:
            # Nested direct acquisitions inside the held range.
            for lock_id, line in self.direct.get(fn.qualname, []):
                if region.start < line <= region.end and lock_id != region.lock_id:
                    self._add_edge(
                        region, lock_id, path, fn,
                        [f"{fn.qualname}:{line}"],
                    )
            # Acquisitions reachable through calls made while holding.
            for site in self.callgraph.callees(fn.qualname):
                if not (region.start <= site.line <= region.end):
                    continue
                for lock_id, hops in self._transitive(site.callee).items():
                    if lock_id == region.lock_id:
                        continue
                    self._add_edge(
                        region, lock_id, path, fn,
                        [f"call {site.callee} ({fn.key}:{site.line})", *hops],
                    )

    def _add_edge(
        self,
        region: _LockRegion,
        lock_id: str,
        path: str,
        fn: FunctionSymbol,
        hops: list[str],
    ) -> None:
        key = (region.lock_id, lock_id)
        if key in self.edges:
            return
        self.edges[key] = _Edge(
            src=region.lock_id,
            dst=lock_id,
            path=path,
            hold_line=region.hold_line,
            hops=[f"held in {fn.qualname} since line {region.hold_line}", *hops],
        )

    # -- cycle detection -------------------------------------------------
    def cycles(self) -> list[list[_Edge]]:
        """One witness cycle (as its edge list) per strongly-connected
        component of the may-acquire graph that contains a cycle."""
        adjacency: dict[str, list[str]] = {}
        for src, dst in self.edges:
            adjacency.setdefault(src, []).append(dst)
            adjacency.setdefault(dst, [])
        components = _tarjan_sccs(adjacency)
        witnesses: list[list[_Edge]] = []
        for component in components:
            if len(component) < 2:
                continue
            in_scc = set(component)
            start = min(in_scc)
            cycle_nodes = self._cycle_through(start, in_scc, adjacency)
            if not cycle_nodes:
                continue
            edges = [
                self.edges[(cycle_nodes[i], cycle_nodes[(i + 1) % len(cycle_nodes)])]
                for i in range(len(cycle_nodes))
            ]
            witnesses.append(edges)
        return sorted(witnesses, key=lambda edges: (edges[0].path, edges[0].hold_line))

    @staticmethod
    def _cycle_through(
        start: str, in_scc: set[str], adjacency: dict[str, list[str]]
    ) -> list[str]:
        # BFS within the SCC from start back to start.
        queue: list[list[str]] = [[start]]
        while queue:
            nodes = queue.pop(0)
            for succ in sorted(adjacency.get(nodes[-1], [])):
                if succ == start and len(nodes) >= 2:
                    return nodes
                if succ in in_scc and succ not in nodes:
                    queue.append(nodes + [succ])
        # Two-node cycles: start -> x -> start.
        for succ in sorted(adjacency.get(start, [])):
            if succ in in_scc and start in adjacency.get(succ, []):
                return [start, succ]
        return []


def _tarjan_sccs(adjacency: dict[str, list[str]]) -> list[list[str]]:
    """Iterative Tarjan: strongly-connected components of ``adjacency``."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0
    for root in sorted(adjacency):
        if root in index_of:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = adjacency.get(node, [])
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                work[-1] = (node, child_index)
                if child not in index_of:
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if advanced:
                continue
            if low[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


# ----------------------------------------------------------------------
# KSP009 — transitively unpicklable IPC payloads
# ----------------------------------------------------------------------
class IpcPayloadReachabilityRule(Rule):
    """Everything reaching a pipe must bottom out in picklable types.

    KSP006 catches lambdas and closures *lexically* at the send site;
    this rule follows the object graph: an argument whose
    statically-known type (parameter annotations, local constructor
    assignments, ``self.attr`` types) transitively holds a lock, thread,
    socket, or thread-local — with no ``__getstate__``/``__reduce__``
    on the path to shed it — will not survive a spawn-mode restart,
    even though fork-mode COW makes it appear to work today.
    """

    code = "KSP009"
    title = "IPC payload reaches an unpicklable type"

    def project_check(self, project: object) -> Iterator[Finding]:
        assert isinstance(project, Project)
        taint = project.symbols.pickle_taint()
        for module in project.symbols.modules.values():
            if not module.key.startswith(config.IPC_PREFIX):
                continue
            yield from self._check_module(project, module, taint)

    def _check_module(
        self,
        project: Project,
        module: ModuleSymbols,
        taint: dict[str, list[str]],
    ) -> Iterator[Finding]:
        functions = list(module.functions.values())
        for cls in module.classes.values():
            functions.extend(cls.methods.values())
        for fn in functions:
            owner = (
                module.classes.get(fn.class_name) if fn.class_name else None
            )
            local_types = _local_types(fn, owner)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = dotted_name(node.func).rsplit(".", 1)[-1]
                if callee not in config.IPC_SEND_METHODS:
                    continue
                arguments = list(node.args) + [
                    kw.value for kw in node.keywords
                ]
                for argument in arguments:
                    yield from self._check_value(
                        module, node, callee, argument, owner, local_types, taint
                    )

    def _check_value(
        self,
        module: ModuleSymbols,
        send: ast.Call,
        callee: str,
        value: ast.expr,
        owner: ClassSymbol | None,
        local_types: dict[str, str],
        taint: dict[str, list[str]],
    ) -> Iterator[Finding]:
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for element in value.elts:
                yield from self._check_value(
                    module, send, callee, element, owner, local_types, taint
                )
            return
        if isinstance(value, ast.Dict):
            for element in value.values:
                yield from self._check_value(
                    module, send, callee, element, owner, local_types, taint
                )
            return
        type_name: str | None = None
        detail = ""
        if isinstance(value, ast.Call):
            leaf = dotted_name(value.func).rsplit(".", 1)[-1]
            if leaf in UNPICKLABLE_FACTORIES:
                yield _finding(
                    module.path,
                    value.lineno,
                    self.code,
                    f"{leaf}() constructed directly inside a {callee!r} "
                    "payload can never pickle across the IPC boundary",
                )
                return
            if leaf and leaf[:1].isupper():
                type_name = leaf
        elif isinstance(value, ast.Name):
            type_name = local_types.get(value.id)
        elif (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and owner is not None
        ):
            if value.attr in owner.unpicklable_attrs:
                factory = owner.unpicklable_attrs[value.attr]
                yield _finding(
                    module.path,
                    value.lineno,
                    self.code,
                    f"'self.{value.attr}' ({factory}()) in a {callee!r} "
                    "payload: locks/threads cannot cross the IPC boundary",
                )
                return
            type_name = owner.attr_types.get(value.attr)
            detail = f"self.{value.attr}: "
        if type_name is None or type_name in config.PROCESS_SAFE_TYPES:
            return
        chain = taint.get(type_name)
        if chain:
            witness = " -> ".join(chain)
            yield _finding(
                module.path,
                value.lineno,
                self.code,
                f"{callee!r} payload value {detail}{type_name} transitively "
                f"reaches an unpicklable type ({witness}); it will fail on "
                "the first spawn-mode restart — shed the offender in "
                "__getstate__ or send plain data",
            )


# ----------------------------------------------------------------------
# KSP010 — engine protocol conformance and the batch registry
# ----------------------------------------------------------------------
class ProtocolConformanceRule(Rule):
    """Every engine claiming ``repro.api`` answers it with the same shape.

    Three checks against :data:`~repro.analysis.config.ENGINE_REGISTRY`:
    a registered class must exist and implement each claimed method with
    the canonical parameter names (extras need defaults); an
    engine-shaped class (``execute`` + ``execute_many``) in the engine
    tier must be registered so conformance and batch-equivalence
    coverage follow it; and every public ``*_many``/``*_batch``
    definition in the protocol tier must appear in
    :data:`~repro.analysis.config.BATCH_REGISTRY` naming the sequential
    reference its equivalence tests run against.
    """

    code = "KSP010"
    title = "engine protocol conformance / unregistered batch override"

    def project_check(self, project: object) -> Iterator[Finding]:
        assert isinstance(project, Project)
        symbols = project.symbols
        yield from self._check_registered(symbols)
        yield from self._check_unregistered_engines(symbols)
        yield from self._check_batch_registry(symbols)

    def _check_registered(self, symbols: object) -> Iterator[Finding]:
        for key, classes in config.ENGINE_REGISTRY.items():
            module = getattr(symbols, "modules").get(key)
            if module is None:
                continue  # partial project (fixtures)
            for class_name, claimed in classes.items():
                cls = module.classes.get(class_name)
                if cls is None:
                    yield _finding(
                        module.path,
                        1,
                        self.code,
                        f"stale ENGINE_REGISTRY entry: {key} no longer "
                        f"defines class {class_name!r}",
                    )
                    continue
                for method_name in claimed:
                    yield from self._check_method(module, cls, method_name)

    def _check_method(
        self, module: ModuleSymbols, cls: ClassSymbol, method_name: str
    ) -> Iterator[Finding]:
        method = cls.methods.get(method_name)
        if method is None:
            yield _finding(
                module.path,
                cls.lineno,
                self.code,
                f"{cls.name} claims the repro.api protocol but does not "
                f"implement {method_name!r}",
            )
            return
        canonical = config.ENGINE_PROTOCOL_PARAMS.get(method_name)
        if canonical is None:
            return
        actual = method.params[1:]  # drop self
        head = actual[:len(canonical)]
        if head != canonical:
            yield _finding(
                module.path,
                method.lineno,
                self.code,
                f"{cls.name}.{method_name} signature {head!r} differs from "
                f"the protocol's {canonical!r}: keyword callers dispatching "
                "through the protocol will break",
            )
            return
        extras = actual[len(canonical):]
        if len(extras) > method.defaults:
            yield _finding(
                module.path,
                method.lineno,
                self.code,
                f"{cls.name}.{method_name} adds required parameter(s) "
                f"{extras!r} beyond the protocol: protocol callers cannot "
                "supply them — give them defaults",
            )

    def _check_unregistered_engines(self, symbols: object) -> Iterator[Finding]:
        for key, module in getattr(symbols, "modules").items():
            if not key.startswith(config.ENGINE_SCAN_PREFIXES):
                continue
            registered = config.ENGINE_REGISTRY.get(key, {})
            for cls in module.classes.values():
                if cls.name in registered:
                    continue
                if "execute" in cls.methods and "execute_many" in cls.methods:
                    yield _finding(
                        module.path,
                        cls.lineno,
                        self.code,
                        f"engine-shaped class {cls.name!r} (defines execute "
                        "+ execute_many) is not in ENGINE_REGISTRY: register "
                        "it so conformance and batch-equivalence coverage "
                        "follow it",
                    )

    def _check_batch_registry(self, symbols: object) -> Iterator[Finding]:
        present: set[str] = set()
        for fn in getattr(symbols, "iter_functions")():
            if not fn.key.startswith(config.BATCH_SCAN_PREFIXES):
                continue
            if not fn.name.endswith(config.BATCH_SUFFIXES):
                continue
            if fn.name.startswith("_"):
                continue
            present.add(fn.qualname)
            if fn.qualname not in config.BATCH_REGISTRY:
                yield _finding(
                    symbols.modules[fn.key].path,  # type: ignore[attr-defined]
                    fn.lineno,
                    self.code,
                    f"batch override {fn.qualname!r} is not registered in "
                    "BATCH_REGISTRY against its sequential reference: "
                    "nothing guarantees it computes what the per-item path "
                    "computes",
                )
        modules = getattr(symbols, "modules")
        for qualname in config.BATCH_REGISTRY:
            key = qualname.split("::", 1)[0]
            if key in modules and qualname not in present:
                yield _finding(
                    modules[key].path,
                    1,
                    self.code,
                    f"stale BATCH_REGISTRY entry {qualname!r}: no such "
                    "public batch definition exists",
                )


# ----------------------------------------------------------------------
# KSP011 — observability coverage of externally-driven surfaces
# ----------------------------------------------------------------------
class ObservabilityCoverageRule(Rule):
    """Every route, pipe kind, and CLI verb is observably instrumented.

    Surfaces are discovered statically (``endpoint``/``kind`` string
    comparisons in the router and worker loop, ``add_parser`` verbs) and
    checked against :data:`~repro.analysis.config.OBSERVED_SURFACES`;
    span/event emit sites are collected project-wide and checked against
    :data:`~repro.analysis.config.INSTRUMENTATION_NAMES`.  Drift in
    either direction is a finding: an unregistered surface or emit name,
    a stale registry entry, or a surface whose declared names nothing
    emits.  The whole-registry checks only run when all three surface
    source modules are in the project (a full-tree lint).
    """

    code = "KSP011"
    title = "observability coverage drift"

    _SPAN_LEAVES = frozenset({"trace", "trace_span", "span"})

    def project_check(self, project: object) -> Iterator[Finding]:
        assert isinstance(project, Project)
        symbols = project.symbols
        names, prefixes, sites = self._collect_emits(symbols)
        yield from self._check_emit_sites(sites)
        surfaces = self._discover_surfaces(symbols)
        for surface, (path, line) in sorted(surfaces.items()):
            if surface not in config.OBSERVED_SURFACES:
                yield _finding(
                    path,
                    line,
                    self.code,
                    f"surface {surface!r} is not in OBSERVED_SURFACES: "
                    "declare the span/event that makes it observable (or "
                    "an explicit empty exemption)",
                )
        full_tree = all(
            key in symbols.modules for key in config.SURFACE_SOURCES.values()
        )
        if not full_tree:
            return
        yield from self._check_registry(symbols, surfaces, names, prefixes)

    # -- emit-site collection -------------------------------------------
    def _collect_emits(
        self, symbols: object
    ) -> tuple[set[str], set[str], list[tuple[str, int, str, str]]]:
        names: set[str] = set()
        prefixes: set[str] = set()
        #: (path, line, kind, value) where kind is "name" or "prefix"
        sites: list[tuple[str, int, str, str]] = []
        for module in getattr(symbols, "modules").values():
            for node in ast.walk(module.ctx.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                dotted = dotted_name(node.func)
                leaf = dotted.rsplit(".", 1)[-1]
                is_event = leaf == "emit" and "EVENTS" in dotted
                is_span = leaf in self._SPAN_LEAVES
                if not (is_event or is_span):
                    continue
                for kind, value in self._literal_names(node.args[0]):
                    sites.append((module.ctx.path, node.lineno, kind, value))
                    if kind == "name":
                        names.add(value)
                    else:
                        prefixes.add(value)
        return names, prefixes, sites

    @staticmethod
    def _literal_names(arg: ast.expr) -> list[tuple[str, str]]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return [("name", arg.value)]
        if (
            isinstance(arg, ast.BinOp)
            and isinstance(arg.op, ast.Add)
            and isinstance(arg.left, ast.Constant)
            and isinstance(arg.left.value, str)
        ):
            return [("prefix", arg.left.value)]
        if (
            isinstance(arg, ast.JoinedStr)
            and arg.values
            and isinstance(arg.values[0], ast.Constant)
            and isinstance(arg.values[0].value, str)
        ):
            return [("prefix", arg.values[0].value)]
        if isinstance(arg, ast.IfExp):
            results = []
            for branch in (arg.body, arg.orelse):
                if isinstance(branch, ast.Constant) and isinstance(
                    branch.value, str
                ):
                    results.append(("name", branch.value))
            return results
        return []

    def _check_emit_sites(
        self, sites: list[tuple[str, int, str, str]]
    ) -> Iterator[Finding]:
        for path, line, kind, value in sites:
            if kind == "name":
                known = value in config.INSTRUMENTATION_NAMES or value.startswith(
                    config.INSTRUMENTATION_PREFIXES
                )
            else:
                known = value in config.INSTRUMENTATION_PREFIXES
            if not known:
                yield _finding(
                    path,
                    line,
                    self.code,
                    f"emitted instrumentation {kind} {value!r} is not in the "
                    "checked-in registry (INSTRUMENTATION_NAMES/_PREFIXES): "
                    "dashboards and alerts cannot know about it",
                )

    # -- surface discovery ----------------------------------------------
    def _discover_surfaces(
        self, symbols: object
    ) -> dict[str, tuple[str, int]]:
        surfaces: dict[str, tuple[str, int]] = {}
        modules = getattr(symbols, "modules")
        for surface_kind, key in config.SURFACE_SOURCES.items():
            module = modules.get(key)
            if module is None:
                continue
            tree = module.ctx.tree
            if surface_kind == "cli":
                found = self._cli_verbs(tree)
            elif surface_kind == "ipc":
                found = self._compared_strings(tree, "kind")
            else:
                found = self._http_endpoints(tree)
            for value, line in found:
                surfaces.setdefault(
                    f"{surface_kind}:{value}", (module.ctx.path, line)
                )
        return surfaces

    @staticmethod
    def _cli_verbs(tree: ast.Module) -> list[tuple[str, int]]:
        verbs = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_parser"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                verbs.append((node.args[0].value, node.lineno))
        return verbs

    @staticmethod
    def _compared_strings(
        tree: ast.Module, variable: str
    ) -> list[tuple[str, int]]:
        values = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not (
                isinstance(node.left, ast.Name) and node.left.id == variable
            ):
                continue
            if not any(isinstance(op, (ast.Eq, ast.In)) for op in node.ops):
                continue
            for comparator in node.comparators:
                if isinstance(comparator, ast.Constant) and isinstance(
                    comparator.value, str
                ):
                    values.append((comparator.value, node.lineno))
                elif isinstance(comparator, ast.Tuple):
                    for element in comparator.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            values.append((element.value, node.lineno))
        return values

    def _http_endpoints(self, tree: ast.Module) -> list[tuple[str, int]]:
        endpoints = self._compared_strings(tree, "endpoint")
        # Membership tests against module-level tuple constants
        # (``endpoint in _RATE_LIMITED``) contribute their elements.
        constants: dict[str, list[tuple[str, int]]] = {}
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, (ast.Tuple, ast.List))
            ):
                elements = [
                    (element.value, element.lineno)
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
                constants[node.targets[0].id] = elements
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not (
                isinstance(node.left, ast.Name) and node.left.id == "endpoint"
            ):
                continue
            if not any(isinstance(op, ast.In) for op in node.ops):
                continue
            for comparator in node.comparators:
                if isinstance(comparator, ast.Name):
                    endpoints.extend(constants.get(comparator.id, []))
        return endpoints

    # -- full-tree registry checks --------------------------------------
    def _check_registry(
        self,
        symbols: object,
        surfaces: dict[str, tuple[str, int]],
        names: set[str],
        prefixes: set[str],
    ) -> Iterator[Finding]:
        modules = getattr(symbols, "modules")

        def emitted(name: str) -> bool:
            return name in names or any(
                name.startswith(prefix) for prefix in prefixes
            )

        for surface, required in sorted(config.OBSERVED_SURFACES.items()):
            surface_kind = surface.split(":", 1)[0]
            source = modules.get(config.SURFACE_SOURCES[surface_kind])
            location = surfaces.get(surface)
            if location is None:
                yield _finding(
                    source.path,
                    1,
                    self.code,
                    f"stale OBSERVED_SURFACES entry {surface!r}: the surface "
                    "no longer exists in the code",
                )
                continue
            for name in required:
                if not emitted(name):
                    yield _finding(
                        location[0],
                        location[1],
                        self.code,
                        f"surface {surface!r} declares instrumentation "
                        f"{name!r} but nothing in the tree emits it: the "
                        "surface is effectively unobservable",
                    )
        anchor = next(
            modules[key]
            for key in config.SURFACE_SOURCES.values()
            if key in modules
        )
        for name in sorted(config.INSTRUMENTATION_NAMES):
            if not emitted(name):
                yield _finding(
                    anchor.path,
                    1,
                    self.code,
                    f"stale INSTRUMENTATION_NAMES entry {name!r}: nothing "
                    "emits it anymore",
                )


#: The interprocedural half of the catalogue, in order.
PROJECT_RULES: tuple[Rule, ...] = (
    LockOrderCycleRule(),
    IpcPayloadReachabilityRule(),
    ProtocolConformanceRule(),
    ObservabilityCoverageRule(),
)
