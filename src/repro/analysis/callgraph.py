"""Approximate project call graph over the :mod:`symbols` table.

The graph maps every function/method to the project functions it *may*
call, resolved by decreasing confidence:

1. ``self.method(...)`` — the enclosing class (methods win over
   inherited names; a base class defined in the project is consulted
   when the subclass lacks the method);
2. ``name(...)`` — a function defined at module level in the same
   module, or imported from another project module;
3. ``self.attr.method(...)`` / ``var.method(...)`` — the receiver's
   statically-known type (``__init__`` assignments, parameter and local
   annotations), falling back to the global method-name index when the
   name is unambiguous (defined by at most ``_AMBIGUITY_CAP`` classes).

Unresolvable calls are dropped — the KSP rules that consume the graph
(lock ordering, observability coverage) are *may*-analyses where a
missed edge can only under-report, never produce a spurious crash.
Calls routed through the graph remember their source line so lock-cycle
findings can print the full acquisition path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.rules import ModuleContext, dotted_name
from repro.analysis.symbols import (
    ClassSymbol,
    FunctionSymbol,
    ModuleSymbols,
    ProjectSymbols,
    _annotation_leaf,
)

#: A method name defined by more than this many project classes is too
#: ambiguous to resolve through the name index alone.
_AMBIGUITY_CAP = 2


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge: caller -> callee at a source line."""

    caller: str  # caller qualname
    callee: str  # callee qualname
    line: int  # line of the call expression in the caller's module


class CallGraph:
    """Qualname -> outgoing :class:`CallSite` edges."""

    def __init__(self, symbols: ProjectSymbols) -> None:
        self.symbols = symbols
        self.edges: dict[str, list[CallSite]] = {}
        self.functions: dict[str, FunctionSymbol] = {
            fn.qualname: fn for fn in symbols.iter_functions()
        }
        for fn in self.functions.values():
            self.edges[fn.qualname] = list(self._resolve_calls(fn))

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _resolve_calls(self, fn: FunctionSymbol) -> Iterator[CallSite]:
        module = self.symbols.modules[fn.key]
        owner = module.classes.get(fn.class_name) if fn.class_name else None
        local_types = _local_types(fn, owner)
        seen: set[tuple[str, int]] = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self._resolve_callee(node.func, fn, module, owner, local_types)
            if callee is None:
                continue
            edge_key = (callee.qualname, node.lineno)
            if edge_key in seen:
                continue
            seen.add(edge_key)
            yield CallSite(caller=fn.qualname, callee=callee.qualname, line=node.lineno)

    def _resolve_callee(
        self,
        func: ast.expr,
        fn: FunctionSymbol,
        module: ModuleSymbols,
        owner: ClassSymbol | None,
        local_types: dict[str, str],
    ) -> FunctionSymbol | None:
        if isinstance(func, ast.Name):
            return self._resolve_plain_name(func.id, module)
        if not isinstance(func, ast.Attribute):
            return None
        method = func.attr
        receiver = func.value
        # self.method(...)
        if isinstance(receiver, ast.Name) and receiver.id == "self" and owner:
            resolved = self._method_on(owner, method)
            if resolved is not None:
                return resolved
        # <typed receiver>.method(...)
        type_name = self._receiver_type(receiver, owner, local_types)
        if type_name:
            cls = self.symbols.lookup_class(type_name)
            if cls is not None:
                resolved = self._method_on(cls, method)
                if resolved is not None:
                    return resolved
        # Fall back to the global method-name index when unambiguous.
        candidates = self.symbols.methods_by_name.get(method) or []
        owners = {c.qualname.rsplit(".", 1)[0] for c in candidates}
        if candidates and len(owners) <= _AMBIGUITY_CAP:
            return candidates[0] if len(owners) == 1 else None
        return None

    def _resolve_plain_name(
        self, name: str, module: ModuleSymbols
    ) -> FunctionSymbol | None:
        if name in module.functions:
            return module.functions[name]
        imported = module.imports.get(name)
        if imported and imported.startswith("repro."):
            target = imported.rsplit(".", 1)[-1]
            for fns in (self.symbols.functions_by_name.get(target) or [])[:1]:
                return fns
        return None

    def _receiver_type(
        self,
        receiver: ast.expr,
        owner: ClassSymbol | None,
        local_types: dict[str, str],
    ) -> str | None:
        if isinstance(receiver, ast.Name):
            return local_types.get(receiver.id)
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and owner is not None
        ):
            return owner.attr_types.get(receiver.attr)
        return None

    def _method_on(self, cls: ClassSymbol, method: str) -> FunctionSymbol | None:
        """Look ``method`` up on ``cls``, then on project-defined bases."""
        visited: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.name in visited:
                continue
            visited.add(current.name)
            if method in current.methods:
                return current.methods[method]
            for base in current.bases:
                base_cls = self.symbols.lookup_class(base.rsplit(".", 1)[-1])
                if base_cls is not None:
                    queue.append(base_cls)
        return None

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def callees(self, qualname: str) -> list[CallSite]:
        return self.edges.get(qualname, [])

    def reachable(self, qualname: str) -> dict[str, list[CallSite]]:
        """Every function reachable from ``qualname`` with one witness path.

        Returns callee qualname -> the chain of :class:`CallSite` edges
        of the first (BFS, therefore shortest) path that reaches it.
        """
        paths: dict[str, list[CallSite]] = {}
        queue: list[tuple[str, list[CallSite]]] = [(qualname, [])]
        while queue:
            current, path = queue.pop(0)
            for site in self.callees(current):
                if site.callee in paths or site.callee == qualname:
                    continue
                chain = path + [site]
                paths[site.callee] = chain
                queue.append((site.callee, chain))
        return paths


@dataclass
class Project:
    """One whole-program lint unit: symbol table + call graph + sources."""

    symbols: ProjectSymbols
    callgraph: CallGraph
    contexts: list["ModuleContext"]

    @classmethod
    def build(cls, contexts: list["ModuleContext"]) -> "Project":
        symbols = ProjectSymbols.build(contexts)
        return cls(
            symbols=symbols,
            callgraph=CallGraph(symbols),
            contexts=list(contexts),
        )


def _local_types(
    fn: FunctionSymbol, owner: ClassSymbol | None
) -> dict[str, str]:
    """Parameter/local-variable name -> class-name leaf, best effort."""
    types: dict[str, str] = {}
    args = fn.node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        leaf = _annotation_leaf(arg.annotation)
        if leaf:
            types[arg.arg] = leaf
    for node in ast.walk(fn.node):
        target: ast.expr | None = None
        leaf = None
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            target, leaf = node.target, _annotation_leaf(node.annotation)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(
            node.targets[0], ast.Name
        ):
            target = node.targets[0]
            if isinstance(node.value, ast.Call):
                callee = dotted_name(node.value.func).rsplit(".", 1)[-1]
                if callee and callee[0].isupper():
                    leaf = callee
        if isinstance(target, ast.Name) and leaf:
            types.setdefault(target.id, leaf)
    return types
