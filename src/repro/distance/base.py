"""The Network Distance Module interface.

K-SPIN's defining flexibility claim (paper §1.2, §3) is that the
keyword-separated index is decoupled from the network-distance index, so
*any* exact point-to-point technique can be plugged in.  Every oracle in
this package (Dijkstra, Contraction Hierarchies, hub labeling, G-tree)
implements :class:`DistanceOracle`, and the K-SPIN query processor only
ever calls :meth:`DistanceOracle.distance`.

Oracles count how many distance computations they serve via
``query_count`` — the paper's analysis (§5.1) identifies the network
distance computation as the dominant per-iteration cost, so benchmarks
report this counter alongside wall-clock time.
"""

from __future__ import annotations

import abc

from repro.graph.road_network import RoadNetwork


class DistanceOracle(abc.ABC):
    """Exact point-to-point network distance between any two vertices."""

    #: Human-readable name used in benchmark tables ("CH", "PHL", ...).
    name: str = "oracle"

    def __init__(self) -> None:
        self.query_count = 0

    @abc.abstractmethod
    def distance(self, source: int, target: int) -> float:
        """Exact network distance ``d(source, target)``; ``inf`` if disconnected."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Approximate in-memory index footprint in bytes."""

    def reset_counters(self) -> None:
        """Zero the per-experiment query counter."""
        self.query_count = 0


def verify_oracle(
    oracle: DistanceOracle, graph: RoadNetwork, pairs: list[tuple[int, int]]
) -> None:
    """Assert an oracle agrees with Dijkstra on the given vertex pairs.

    A debugging/testing helper used by the test suite and by users
    plugging in their own oracle implementations.
    """
    from repro.graph.dijkstra import dijkstra_distance

    for source, target in pairs:
        expected = dijkstra_distance(graph, source, target)
        actual = oracle.distance(source, target)
        if abs(actual - expected) > 1e-6 * max(1.0, expected):
            raise AssertionError(
                f"{oracle.name}: d({source},{target}) = {actual}, "
                f"Dijkstra says {expected}"
            )
