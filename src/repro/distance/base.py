"""The Network Distance Module interface.

K-SPIN's defining flexibility claim (paper §1.2, §3) is that the
keyword-separated index is decoupled from the network-distance index, so
*any* exact point-to-point technique can be plugged in.  Every oracle in
this package (Dijkstra, Contraction Hierarchies, hub labeling, G-tree)
implements :class:`DistanceOracle`, and the K-SPIN query processor only
ever calls :meth:`DistanceOracle.distance`.

Oracles count how many distance computations they serve via
``query_count`` — the paper's analysis (§5.1) identifies the network
distance computation as the dominant per-iteration cost, so benchmarks
report this counter alongside wall-clock time.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.graph.road_network import RoadNetwork


class DistanceOracle(abc.ABC):
    """Exact point-to-point network distance between any two vertices.

    The batch refactor (ROADMAP: "batched query execution end-to-end")
    added a vector API — :meth:`distances_many` / :meth:`knn_many` —
    with a sequential fallback so every oracle conforms without change.
    Index-free oracles override it to amortise one CSR ``sssp_rows``
    call over the whole batch.
    """

    #: Human-readable name used in benchmark tables ("CH", "PHL", ...).
    name: str = "oracle"

    def __init__(self) -> None:
        self.query_count = 0

    @abc.abstractmethod
    def distance(self, source: int, target: int) -> float:
        """Exact network distance ``d(source, target)``; ``inf`` if disconnected."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Approximate in-memory index footprint in bytes."""

    def distances_many(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> list[float]:
        """Pairwise distances ``[d(s0,t0), d(s1,t1), ...]`` in one call.

        The default is the sequential fallback — semantically the
        definition of the method — so every oracle conforms; batch-aware
        oracles override it with one vectorised search per distinct
        source.  Results must be bit-identical to the fallback.
        """
        if len(sources) != len(targets):
            raise ValueError(
                f"pairwise call needs equal lengths, got "
                f"{len(sources)} sources and {len(targets)} targets"
            )
        # Sanctioned per-item fallback: this loop *defines* the batch
        # semantics (KSP007 forbids such loops in overriding *_many
        # bodies, which must vectorise instead).
        return [self.distance(s, t) for s, t in zip(sources, targets)]  # ksp: ignore[KSP007]

    def knn_many(
        self, sources: Sequence[int], candidates: Sequence[int], k: int
    ) -> list[list[tuple[int, float]]]:
        """For each source, the ``k`` nearest of ``candidates``.

        Ties break on the candidate id so the answer is deterministic
        across backends.  Built on :meth:`distances_many`, so oracles
        that vectorise the pairwise call get a batched kNN for free.
        """
        if k < 1:
            raise ValueError("k must be positive")
        candidates = list(candidates)
        flat_sources = [s for s in sources for _ in candidates]
        flat_targets = [c for _ in sources for c in candidates]
        flat = self.distances_many(flat_sources, flat_targets)
        out: list[list[tuple[int, float]]] = []
        width = len(candidates)
        for i in range(len(sources)):
            row = flat[i * width : (i + 1) * width]
            ranked = sorted(zip(candidates, row), key=lambda cd: (cd[1], cd[0]))
            out.append([(c, d) for c, d in ranked[:k] if d != float("inf")])
        return out

    def reset_counters(self) -> None:
        """Zero the per-experiment query counter."""
        self.query_count = 0


def verify_oracle(
    oracle: DistanceOracle, graph: RoadNetwork, pairs: list[tuple[int, int]]
) -> None:
    """Assert an oracle agrees with Dijkstra on the given vertex pairs.

    A debugging/testing helper used by the test suite and by users
    plugging in their own oracle implementations.
    """
    from repro.graph.dijkstra import dijkstra_distance

    for source, target in pairs:
        expected = dijkstra_distance(graph, source, target)
        actual = oracle.distance(source, target)
        if abs(actual - expected) > 1e-6 * max(1.0, expected):
            raise AssertionError(
                f"{oracle.name}: d({source},{target}) = {actual}, "
                f"Dijkstra says {expected}"
            )
