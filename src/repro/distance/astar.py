"""A* with landmark potentials (the "ALT algorithm", Goldberg & Harrelson).

The paper's Lower Bounding Module is built on ALT landmarks [15]; the
same landmarks also yield a goal-directed *exact* point-to-point oracle:
A* guided by the admissible, consistent potential
``pi(v) = LB(v, target)``.  This oracle occupies the middle ground of
the trade-off spectrum — no extra index beyond the landmark tables the
framework already carries, queries faster than plain Dijkstra — and
demonstrates that one set of landmark tables can serve both framework
roles.
"""

from __future__ import annotations

import heapq
import math

from repro.distance.base import DistanceOracle
from repro.graph.road_network import RoadNetwork
from repro.lowerbound.alt import AltLowerBounder
from repro.lowerbound.base import LowerBounder

INFINITY = math.inf


class AStarOracle(DistanceOracle):
    """Exact distances by A* over ALT landmark potentials.

    Parameters
    ----------
    graph:
        The road network.
    lower_bounder:
        A *consistent* lower bounder supplying the potential; the ALT
        triangle-inequality bound is consistent by construction.  Built
        on demand when omitted (16 landmarks).

    Notes
    -----
    Consistency (``pi(u) <= w(u,v) + pi(v)``) makes reduced edge costs
    non-negative, so vertices settle at their exact distance and the
    search may stop the moment the target settles.
    """

    name = "ALT-A*"

    def __init__(
        self, graph: RoadNetwork, lower_bounder: LowerBounder | None = None
    ) -> None:
        super().__init__()
        self._graph = graph
        self._lower_bounder = lower_bounder or AltLowerBounder(graph)
        #: vertices settled by the most recent query (efficiency metric).
        self.last_settled = 0

    def distance(self, source: int, target: int) -> float:
        self.query_count += 1
        self.last_settled = 0
        if source == target:
            return 0.0
        bound = self._lower_bounder.lower_bound
        distances = {source: 0.0}
        heap: list[tuple[float, int]] = [(bound(source, target), source)]
        settled: set[int] = set()
        neighbors = self._graph.neighbors
        while heap:
            _, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            self.last_settled += 1
            dist_u = distances[u]
            if u == target:
                return dist_u
            for v, weight in neighbors(u):
                candidate = dist_u + weight
                if candidate < distances.get(v, INFINITY):
                    distances[v] = candidate
                    heapq.heappush(heap, (candidate + bound(v, target), v))
        return INFINITY

    def memory_bytes(self) -> int:
        return self._lower_bounder.memory_bytes()
