"""Contraction Hierarchies (Geisberger et al., WEA 2008).

The paper's KS-CH variant pairs K-SPIN with CH as its Network Distance
Module: CH offers a small index and queries far faster than Dijkstra.

Construction contracts vertices in importance order (lazy edge-difference
heuristic), inserting shortcut edges that preserve shortest-path
distances among the remaining vertices.  A query then runs a
bidirectional Dijkstra that only relaxes edges leading *upward* in the
contraction order; the meeting vertex with the smallest combined distance
gives the exact network distance.
"""

from __future__ import annotations

import heapq
import math

from repro import kernels
from repro.distance.base import DistanceOracle
from repro.graph.road_network import RoadNetwork

INFINITY = math.inf


class ContractionHierarchy(DistanceOracle):
    """A CH index over a road network.

    Parameters
    ----------
    graph:
        The road network to index.  Must not be mutated afterwards.
    witness_settle_limit:
        Max vertices settled per witness search.  Small limits speed up
        construction at the cost of a few redundant (but harmless)
        shortcuts.

    Examples
    --------
    >>> from repro.graph import perturbed_grid_network
    >>> g = perturbed_grid_network(4, 4, seed=0)
    >>> ch = ContractionHierarchy(g)
    >>> round(ch.distance(0, 15), 6) == round(__import__(
    ...     "repro.graph.dijkstra", fromlist=["dijkstra_distance"]
    ... ).dijkstra_distance(g, 0, 15), 6)
    True
    """

    name = "CH"

    def __init__(self, graph: RoadNetwork, witness_settle_limit: int = 500) -> None:
        super().__init__()
        self._n = graph.num_vertices
        self._witness_settle_limit = witness_settle_limit
        # Working adjacency mutated during contraction (original + shortcuts
        # among not-yet-contracted vertices).
        self._work: list[dict[int, float]] = [
            dict() for _ in range(self._n)
        ]
        for u, v, w in graph.edges():
            self._work[u][v] = min(w, self._work[u].get(v, INFINITY))
            self._work[v][u] = min(w, self._work[v].get(u, INFINITY))
        self.rank: list[int] = [-1] * self._n
        self.num_shortcuts = 0
        # Upward adjacency filled in during contraction.
        self._upward: list[list[tuple[int, float]]] = [[] for _ in range(self._n)]
        # (u, v) -> contracted middle vertex, for unpacking shortcut
        # edges back into original-graph paths.
        self._middle: dict[tuple[int, int], int] = {}
        self._contract_all()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _contract_all(self) -> None:
        contracted = [False] * self._n
        heap = [
            (self._edge_difference(v, contracted), v) for v in range(self._n)
        ]
        heapq.heapify(heap)
        next_rank = 0
        deleted_neighbors = [0] * self._n
        while heap:
            priority, v = heapq.heappop(heap)
            if contracted[v]:
                continue
            # Lazy update: re-check priority before committing.
            current = self._edge_difference(v, contracted) + deleted_neighbors[v]
            if heap and current > heap[0][0]:
                heapq.heappush(heap, (current, v))
                continue
            self._contract_vertex(v, contracted)
            contracted[v] = True
            self.rank[v] = next_rank
            next_rank += 1
            for u in self._work[v]:
                deleted_neighbors[u] += 1

    def _edge_difference(self, v: int, contracted: list[bool]) -> int:
        """Shortcuts that contracting ``v`` would add, minus edges removed."""
        neighbors = [u for u in self._work[v] if not contracted[u]]
        shortcuts = 0
        for i, u in enumerate(neighbors):
            through = self._work[v][u]
            for w in neighbors[i + 1 :]:
                via = through + self._work[v][w]
                if not self._has_witness(u, w, v, via, contracted):
                    shortcuts += 1
        return shortcuts - len(neighbors)

    def _contract_vertex(self, v: int, contracted: list[bool]) -> None:
        neighbors = [u for u in self._work[v] if not contracted[u]]
        for u in neighbors:
            self._upward[v].append((u, self._work[v][u]))
        for i, u in enumerate(neighbors):
            through = self._work[v][u]
            for w in neighbors[i + 1 :]:
                via = through + self._work[v][w]
                if self._has_witness(u, w, v, via, contracted):
                    continue
                if via < self._work[u].get(w, INFINITY):
                    if w not in self._work[u]:
                        self.num_shortcuts += 1
                    self._work[u][w] = via
                    self._work[w][u] = via
                    self._middle[(min(u, w), max(u, w))] = v

    def _has_witness(
        self,
        source: int,
        target: int,
        excluded: int,
        limit: float,
        contracted: list[bool],
    ) -> bool:
        """Local Dijkstra: is there a path s->t <= limit avoiding ``excluded``?"""
        distances = {source: 0.0}
        heap = [(0.0, source)]
        settled = 0
        while heap and settled < self._witness_settle_limit:
            dist_u, u = heapq.heappop(heap)
            if dist_u > distances.get(u, INFINITY):
                continue
            if u == target:
                return dist_u <= limit
            if dist_u > limit:
                return False
            settled += 1
            for w, weight in self._work[u].items():
                if w == excluded or contracted[w]:
                    continue
                candidate = dist_u + weight
                if candidate < distances.get(w, INFINITY):
                    distances[w] = candidate
                    heapq.heappush(heap, (candidate, w))
        return distances.get(target, INFINITY) <= limit

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Exact network distance via bidirectional upward search.

        Uses the standard CH termination: a direction stops once its
        queue minimum meets the best meeting-point distance found so
        far (every later meeting through that side can only be worse).

        Unless ``REPRO_KERNELS=python`` forces the dict-based reference
        implementation, the search runs over the calling thread's
        generation-stamped :class:`~repro.kernels.SearchWorkspace` flat
        buffers — O(1) reset between queries, no per-query dict churn.
        """
        self.query_count += 1
        if source == target:
            return 0.0
        if kernels.flat_buffers_enabled():
            return self._distance_stamped(source, target)
        dist = ({source: 0.0}, {target: 0.0})
        heaps: tuple[list[tuple[float, int]], list[tuple[float, int]]] = (
            [(0.0, source)],
            [(0.0, target)],
        )
        best = INFINITY
        upward = self._upward
        while heaps[0] or heaps[1]:
            for side in (0, 1):
                heap = heaps[side]
                if not heap:
                    continue
                dist_u, u = heapq.heappop(heap)
                if dist_u >= best:
                    heap.clear()  # no better meeting via this direction
                    continue
                own = dist[side]
                if dist_u > own.get(u, INFINITY):
                    continue
                other = dist[1 - side].get(u)
                if other is not None and dist_u + other < best:
                    best = dist_u + other
                for v, weight in upward[u]:
                    candidate = dist_u + weight
                    if candidate < own.get(v, INFINITY) and candidate < best:
                        own[v] = candidate
                        heapq.heappush(heap, (candidate, v))
        return best

    def _distance_stamped(self, source: int, target: int) -> float:
        """The upward search over preallocated stamped buffers.

        Identical relaxation and termination logic to the dict body in
        :meth:`distance`; a buffer slot counts as "unreached" unless its
        stamp equals the workspace's current generation.  The workspace
        comes from the per-thread registry, so concurrent queries never
        share scratch and the oracle itself stays pickle-friendly
        (no captured buffers or thread-locals on the instance).
        """
        workspace = kernels.get_workspace(self._n)
        generation = workspace.begin()
        forward = workspace.stamped(0)
        backward = workspace.stamped(1)
        values = (forward[0], backward[0])
        stamps = (forward[1], backward[1])
        values[0][source] = 0.0
        stamps[0][source] = generation
        values[1][target] = 0.0
        stamps[1][target] = generation
        heaps: tuple[list[tuple[float, int]], list[tuple[float, int]]] = (
            [(0.0, source)],
            [(0.0, target)],
        )
        best = INFINITY
        upward = self._upward
        while heaps[0] or heaps[1]:
            for side in (0, 1):
                heap = heaps[side]
                if not heap:
                    continue
                dist_u, u = heapq.heappop(heap)
                if dist_u >= best:
                    heap.clear()  # no better meeting via this direction
                    continue
                own_values, own_stamps = values[side], stamps[side]
                if dist_u > own_values[u]:  # stale heap entry
                    continue
                other_values, other_stamps = values[1 - side], stamps[1 - side]
                if other_stamps[u] == generation:
                    meeting = dist_u + other_values[u]
                    if meeting < best:
                        best = meeting
                for v, weight in upward[u]:
                    candidate = dist_u + weight
                    if candidate < best and (
                        own_stamps[v] != generation or candidate < own_values[v]
                    ):
                        own_values[v] = candidate
                        own_stamps[v] = generation
                        heapq.heappush(heap, (candidate, v))
        return best

    def shortest_path(self, source: int, target: int) -> list[int]:
        """The shortest path as a vertex sequence in the original graph.

        Runs the bidirectional upward search with parent pointers, then
        recursively unpacks shortcut edges through their contracted
        middle vertices.  Returns ``[]`` when disconnected and
        ``[source]`` when ``source == target``.
        """
        if source == target:
            return [source]
        dist = ({source: 0.0}, {target: 0.0})
        parents: tuple[dict[int, int], dict[int, int]] = ({}, {})
        heaps: tuple[list[tuple[float, int]], list[tuple[float, int]]] = (
            [(0.0, source)],
            [(0.0, target)],
        )
        best = INFINITY
        meeting = -1
        upward = self._upward
        while heaps[0] or heaps[1]:
            for side in (0, 1):
                heap = heaps[side]
                if not heap:
                    continue
                dist_u, u = heapq.heappop(heap)
                if dist_u >= best:
                    heap.clear()
                    continue
                own = dist[side]
                if dist_u > own.get(u, INFINITY):
                    continue
                other = dist[1 - side].get(u)
                if other is not None and dist_u + other < best:
                    best = dist_u + other
                    meeting = u
                for v, weight in upward[u]:
                    candidate = dist_u + weight
                    if candidate < own.get(v, INFINITY) and candidate < best:
                        own[v] = candidate
                        parents[side][v] = u
                        heapq.heappush(heap, (candidate, v))
        if meeting < 0:
            return []
        forward = self._chain(parents[0], source, meeting)
        backward = self._chain(parents[1], target, meeting)
        contracted_path = forward + backward[::-1][1:]
        return self._unpack_path(contracted_path)

    @staticmethod
    def _chain(parents: dict[int, int], root: int, leaf: int) -> list[int]:
        path = [leaf]
        while path[-1] != root:
            path.append(parents[path[-1]])
        path.reverse()
        return path

    def _unpack_path(self, path: list[int]) -> list[int]:
        """Expand shortcut edges into original-graph vertex sequences."""
        result = [path[0]]
        for a, b in zip(path, path[1:]):
            result.extend(self._unpack_edge(a, b))
        return result

    def _unpack_edge(self, a: int, b: int) -> list[int]:
        middle = self._middle.get((min(a, b), max(a, b)))
        if middle is None:
            return [b]
        return self._unpack_edge(a, middle) + self._unpack_edge(middle, b)

    def _upward_search(self, source: int) -> dict[int, float]:
        """Full upward-reachable distance map (used by tests/tools)."""
        distances = {source: 0.0}
        heap = [(0.0, source)]
        upward = self._upward
        while heap:
            dist_u, u = heapq.heappop(heap)
            if dist_u > distances.get(u, INFINITY):
                continue
            for v, weight in upward[u]:
                candidate = dist_u + weight
                if candidate < distances.get(v, INFINITY):
                    distances[v] = candidate
                    heapq.heappush(heap, (candidate, v))
        return distances

    def memory_bytes(self) -> int:
        per_entry = 72
        return sum(len(a) for a in self._upward) * per_entry + self._n * 28
