"""Index-free distance oracles: plain and bidirectional Dijkstra.

These are the "no pre-processing" end of the trade-off spectrum the
paper's Network Distance Module spans.  They also serve as the ground
truth every indexed oracle is tested against.

Both oracles delegate to :mod:`repro.graph.dijkstra`, so under the CSR
kernels their searches run in C over the calling thread's
:class:`~repro.kernels.SearchWorkspace`.  The workspace's one-slot SSSP
memo is what makes them fast on the refinement path: the query
processor asks ``distance(query, candidate)`` with the *same* source
for every candidate, so one search amortises over the whole candidate
set.  Because the workspace lives in a per-thread registry — never on
the oracle — the oracles stay stateless, thread-safe, and picklable
(cluster snapshots ship them as-is).
"""

from __future__ import annotations

from repro.distance.base import DistanceOracle
from repro.graph.dijkstra import bidirectional_dijkstra, dijkstra_distance
from repro.graph.road_network import RoadNetwork


class DijkstraOracle(DistanceOracle):
    """Exact distances by early-terminating Dijkstra; no index at all.

    (Under the CSR kernels the early exit becomes a memoised full SSSP
    — see the module docstring; ``REPRO_KERNELS=python`` restores the
    literal early-terminating search.)
    """

    name = "Dijkstra"

    def __init__(self, graph: RoadNetwork) -> None:
        super().__init__()
        self._graph = graph

    def distance(self, source: int, target: int) -> float:
        self.query_count += 1
        return dijkstra_distance(self._graph, source, target)

    def memory_bytes(self) -> int:
        return 0  # uses only the input graph


class BidirectionalDijkstraOracle(DistanceOracle):
    """Exact distances by bidirectional Dijkstra; still index-free."""

    name = "BiDijkstra"

    def __init__(self, graph: RoadNetwork) -> None:
        super().__init__()
        self._graph = graph

    def distance(self, source: int, target: int) -> float:
        self.query_count += 1
        return bidirectional_dijkstra(self._graph, source, target)

    def memory_bytes(self) -> int:
        return 0
