"""Index-free distance oracles: plain and bidirectional Dijkstra.

These are the "no pre-processing" end of the trade-off spectrum the
paper's Network Distance Module spans.  They also serve as the ground
truth every indexed oracle is tested against.

Both oracles delegate to :mod:`repro.graph.dijkstra`, so under the CSR
kernels their searches run in C over the calling thread's
:class:`~repro.kernels.SearchWorkspace`.  The workspace's one-slot SSSP
memo is what makes them fast on the refinement path: the query
processor asks ``distance(query, candidate)`` with the *same* source
for every candidate, so one search amortises over the whole candidate
set.  Because the workspace lives in a per-thread registry — never on
the oracle — the oracles stay stateless, thread-safe, and picklable
(cluster snapshots ship them as-is).
"""

from __future__ import annotations

from typing import Sequence

from repro import kernels
from repro.distance.base import DistanceOracle
from repro.graph.dijkstra import bidirectional_dijkstra, dijkstra_distance
from repro.graph.road_network import RoadNetwork


def _csr_distances_many(
    graph: RoadNetwork, sources: Sequence[int], targets: Sequence[int]
) -> list[float] | None:
    """One batched CSR call for pairwise distances; ``None`` off the fast path.

    All rows for the distinct sources come out of a single
    ``sssp_rows`` C invocation (one scipy dispatch for the whole
    batch), then each ``(source, target)`` pair is a fancy-index pick.
    Bit-identical to per-pair Dijkstra: both compute exact SSSP.
    """
    if not kernels.enabled():
        return None
    if len(sources) != len(targets):
        raise ValueError(
            f"pairwise call needs equal lengths, got "
            f"{len(sources)} sources and {len(targets)} targets"
        )
    if not sources:
        return []
    csr = graph.csr()
    order = sorted(set(int(s) for s in sources))
    row_of = {s: i for i, s in enumerate(order)}
    rows = kernels.sssp_rows(csr, order)
    return [float(rows[row_of[int(s)], int(t)]) for s, t in zip(sources, targets)]


class DijkstraOracle(DistanceOracle):
    """Exact distances by early-terminating Dijkstra; no index at all.

    (Under the CSR kernels the early exit becomes a memoised full SSSP
    — see the module docstring; ``REPRO_KERNELS=python`` restores the
    literal early-terminating search.)
    """

    name = "Dijkstra"

    def __init__(self, graph: RoadNetwork) -> None:
        super().__init__()
        self._graph = graph

    def distance(self, source: int, target: int) -> float:
        self.query_count += 1
        return dijkstra_distance(self._graph, source, target)

    def distances_many(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> list[float]:
        batched = _csr_distances_many(self._graph, sources, targets)
        if batched is None:
            return super().distances_many(sources, targets)
        self.query_count += len(batched)
        return batched

    def memory_bytes(self) -> int:
        return 0  # uses only the input graph


class BidirectionalDijkstraOracle(DistanceOracle):
    """Exact distances by bidirectional Dijkstra; still index-free."""

    name = "BiDijkstra"

    def __init__(self, graph: RoadNetwork) -> None:
        super().__init__()
        self._graph = graph

    def distance(self, source: int, target: int) -> float:
        self.query_count += 1
        return bidirectional_dijkstra(self._graph, source, target)

    def distances_many(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> list[float]:
        # Under the CSR kernels the bidirectional search already routes
        # to the same memoised SSSP, so the batched rows are exact here
        # too; REPRO_KERNELS=python falls back to the sequential loop.
        batched = _csr_distances_many(self._graph, sources, targets)
        if batched is None:
            return super().distances_many(sources, targets)
        self.query_count += len(batched)
        return batched

    def memory_bytes(self) -> int:
        return 0
