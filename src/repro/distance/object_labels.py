"""Per-keyword object labels: hub-inverted kNN structure over PLL labels.

"Simpler is More" (PAPERS.md) observes that on large road networks,
label-based kNN beats tree hierarchies outright: fold every object's
2-hop label into an inverted per-hub structure, and candidate generation
becomes forward scans of the *query's* label instead of any graph or
Voronoi traversal.  This module builds that structure once per keyword
(a TEN-index-style object label) from the array-backed
:class:`~repro.distance.hub_labeling.HubLabeling`.

For keyword ``t`` with object set ``inv(t)``, each hub ``h`` that occurs
in any object's label gets a stream of ``(d(h, o), o)`` pairs sorted by
distance.  A query ``q`` opens one stream per hub of its own label
``L(q)`` and k-way-merges them by ``d(q, h) + d(h, o)``.  Because the
labels form a 2-hop cover, the *first* time an object surfaces in the
merged stream its key equals the exact network distance ``d(q, o)`` —
so the merge yields objects in true nearest-first order, which is what
:class:`repro.core.label_seeding.LabelHeap` exposes through the
InvertedHeap interface.

Freshness: the structure snapshots one
:class:`~repro.nvd.approximate.ApproximateNVD`'s live objects; it is
valid exactly while serving reads that *same* diagram instance with
``pending_updates == 0``.  The heap generator checks both and falls
back to NVD expansion otherwise — correctness never depends on the
cache being fresh.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.distance.hub_labeling import HubLabeling
    from repro.nvd.approximate import ApproximateNVD


class KeywordLabelIndex:
    """Hub-inverted object labels for one keyword.

    Parameters
    ----------
    keyword:
        The keyword this index serves (diagnostics only).
    labeling:
        The shared vertex 2-hop labeling; object labels are read from
        it, never copied per object.
    nvd:
        The keyword's APX-NVD whose live objects are snapshotted.  Kept
        (by reference) purely as the freshness token.
    """

    def __init__(
        self, keyword: str, labeling: "HubLabeling", nvd: "ApproximateNVD"
    ) -> None:
        self.keyword = keyword
        self.nvd_ref = nvd
        objects = sorted(nvd.live_objects())
        buckets: dict[int, list[tuple[float, int]]] = {}
        for obj in objects:
            hub_ids, hub_dists = labeling.label(obj)
            for ordinal, dist in zip(hub_ids.tolist(), hub_dists.tolist()):
                buckets.setdefault(ordinal, []).append((dist, obj))
        # One sorted (dist, obj) stream per hub; ties broken by object
        # id so the merge order is deterministic.
        self._slot_of: dict[int, int] = {}
        self._dists: list[np.ndarray] = []
        self._objs: list[np.ndarray] = []
        for ordinal in sorted(buckets):
            stream = sorted(buckets[ordinal])
            self._slot_of[ordinal] = len(self._dists)
            self._dists.append(
                np.asarray([d for d, _ in stream], dtype=np.float64)
            )
            self._objs.append(
                np.asarray([o for _, o in stream], dtype=np.int64)
            )
        self.num_objects = len(objects)

    def slot(self, hub_ordinal: int) -> int | None:
        """Stream slot for a hub ordinal, or ``None`` if no object's
        label contains that hub."""
        return self._slot_of.get(hub_ordinal)

    def stream(self, slot: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``(distances, objects)`` arrays of one hub's stream."""
        return self._dists[slot], self._objs[slot]

    @property
    def num_hubs(self) -> int:
        """Distinct hubs across all object labels."""
        return len(self._dists)

    def num_entries(self) -> int:
        """Total ``(hub, object)`` pairs — the index's size driver."""
        return sum(len(d) for d in self._dists)

    def is_fresh(self, nvd: "ApproximateNVD") -> bool:
        """Valid iff serving still reads the snapshotted diagram and no
        lazy update has landed on it since."""
        return nvd is self.nvd_ref and nvd.pending_updates == 0

    def memory_bytes(self) -> int:
        """Array payload plus the hub-ordinal slot map."""
        arrays = sum(d.nbytes + o.nbytes for d, o in zip(self._dists, self._objs))
        return arrays + 16 * len(self._slot_of)
