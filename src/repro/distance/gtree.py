"""G-tree: hierarchical graph partitioning index (Zhong et al., TKDE 2015).

G-tree recursively partitions the road network into a tree of subgraphs.
Each tree node stores a *distance matrix*: leaves store border-to-vertex
distances inside the leaf subgraph; internal nodes store distances among
the borders of their children.  A point-to-point query assembles the
distance by "hopping" along border sets up the tree — the repeated
look-up-and-sum steps are the *matrix operations* the paper counts in
Figure 16.

This implementation makes every internal matrix **globally exact** with a
top-down correction pass after the usual bottom-up build (the root's
subgraph is the whole graph, so its matrix is global; each child's matrix
is then relaxed through its parent's).  This keeps query assembly simple
and provably exact regardless of partition quality.

The index also exposes the machinery the spatial-keyword baselines need:
per-query border-distance materialisation (reused across distance
computations, the paper's "materialization"), a matrix-operation counter,
and tree traversal helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.distance.base import DistanceOracle
from repro.graph.dijkstra import dijkstra_within
from repro.graph.road_network import RoadNetwork

INFINITY = math.inf


@dataclass
class GTreeNode:
    """One node of the G-tree hierarchy."""

    index: int
    parent: int  # -1 for the root
    depth: int
    vertices: list[int]  # all vertices of the subgraph (leaves keep these)
    children: list[int] = field(default_factory=list)
    borders: list[int] = field(default_factory=list)
    #: leaf: rows = borders, cols = leaf vertices (inside-leaf distances).
    #: internal: square over `matrix_vertices` (global distances after
    #: correction).  Stored as a float64 numpy array so the min-plus
    #: assembly steps vectorise.
    matrix: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    matrix_vertices: list[int] = field(default_factory=list)
    matrix_position: dict[int, int] = field(default_factory=dict)
    leaf_position: dict[int, int] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class GTree(DistanceOracle):
    """G-tree distance oracle with geometric recursive partitioning.

    Parameters
    ----------
    graph:
        Road network to index.
    fanout:
        Children per internal node (paper default 4).
    leaf_size:
        Maximum vertices per leaf subgraph (paper's tau).

    Notes
    -----
    ``matrix_operations`` counts every matrix look-up-and-sum performed
    during distance assembly, reproducing the machine-independent cost
    metric of the paper's Figure 16.
    """

    name = "G-tree"

    def __init__(self, graph: RoadNetwork, fanout: int = 4, leaf_size: int = 32) -> None:
        super().__init__()
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        if leaf_size < 2:
            raise ValueError("leaf_size must be at least 2")
        self._graph = graph
        self._fanout = fanout
        self._leaf_size = leaf_size
        self.nodes: list[GTreeNode] = []
        self.leaf_of: list[int] = [-1] * graph.num_vertices
        self.matrix_operations = 0
        # Per-query materialisation: (source, node_index) -> distances to
        # node borders, reused across assemblies for the same source.
        self._border_cache: dict[tuple[int, int], list[float]] = {}
        self._build_tree()
        self._compute_borders()
        self._build_matrices()
        self._globalize_matrices()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_tree(self) -> None:
        root = GTreeNode(
            index=0, parent=-1, depth=0, vertices=list(self._graph.vertices())
        )
        self.nodes.append(root)
        pending = [0]
        while pending:
            node_index = pending.pop()
            node = self.nodes[node_index]
            if len(node.vertices) <= self._leaf_size:
                for position, v in enumerate(node.vertices):
                    self.leaf_of[v] = node_index
                    node.leaf_position[v] = position
                continue
            for part in self._partition(node.vertices, self._fanout):
                child = GTreeNode(
                    index=len(self.nodes),
                    parent=node_index,
                    depth=node.depth + 1,
                    vertices=part,
                )
                self.nodes.append(child)
                node.children.append(child.index)
                pending.append(child.index)

    def _partition(self, vertices: list[int], parts: int) -> list[list[int]]:
        """Split vertices into ``parts`` balanced groups by alternating
        geometric median cuts (good cuts on near-planar road networks)."""
        groups = [vertices]
        axis = 0
        while len(groups) < parts:
            groups.sort(key=len, reverse=True)
            biggest = groups.pop(0)
            coordinates = self._graph.coordinates
            biggest.sort(key=lambda v: coordinates(v)[axis])
            middle = len(biggest) // 2
            left, right = biggest[:middle], biggest[middle:]
            if not left or not right:  # pragma: no cover - degenerate split
                groups.append(biggest)
                break
            groups.extend([left, right])
            axis = 1 - axis
        return [g for g in groups if g]

    def _compute_borders(self) -> None:
        neighbors = self._graph.neighbors
        for node in self.nodes:
            if node.index == 0:
                continue  # the root has no outside, hence no borders
            inside = set(node.vertices)
            node.borders = [
                v
                for v in node.vertices
                if any(u not in inside for u, _ in neighbors(v))
            ]

    def _build_matrices(self) -> None:
        """Bottom-up matrices: distances within each node's subgraph."""
        for node in sorted(self.nodes, key=lambda n: -n.depth):
            if node.is_leaf:
                self._build_leaf_matrix(node)
            else:
                self._build_internal_matrix(node)

    def _build_leaf_matrix(self, node: GTreeNode) -> None:
        adjacency = self._graph.subgraph_adjacency(node.vertices)
        rows = []
        for border in node.borders:
            distances = dijkstra_within(adjacency, border)
            rows.append([distances.get(v, INFINITY) for v in node.vertices])
        node.matrix = np.array(rows, dtype=np.float64).reshape(
            len(node.borders), len(node.vertices)
        )

    def _build_internal_matrix(self, node: GTreeNode) -> None:
        """Distances among children borders, within this node's subgraph.

        Runs Dijkstra over the *border graph*: children borders linked by
        (a) each child's internal border-to-border distances and (b) the
        original edges that cross between children.
        """
        union_borders: list[int] = []
        for child_index in node.children:
            for b in self.nodes[child_index].borders:
                union_borders.append(b)
        union_borders = sorted(set(union_borders))
        position = {b: i for i, b in enumerate(union_borders)}
        adjacency: dict[int, list[tuple[int, float]]] = {
            b: [] for b in union_borders
        }
        for child_index in node.children:
            child = self.nodes[child_index]
            for i, b1 in enumerate(child.borders):
                for b2 in child.borders[i + 1 :]:
                    weight = self._within_child_distance(child, b1, b2)
                    if weight < INFINITY:
                        adjacency[b1].append((b2, weight))
                        adjacency[b2].append((b1, weight))
        child_of = {
            v: c for c in node.children for v in self.nodes[c].vertices
        }
        inside = set(child_of)
        for b in union_borders:
            for u, weight in self._graph.neighbors(b):
                if u in inside and child_of[u] != child_of[b]:
                    adjacency[b].append((u, weight))
        node.matrix_vertices = union_borders
        node.matrix_position = position
        rows = []
        for b in union_borders:
            distances = dijkstra_within(adjacency, b)
            rows.append([distances.get(x, INFINITY) for x in union_borders])
        node.matrix = np.array(rows, dtype=np.float64).reshape(
            len(union_borders), len(union_borders)
        )

    def _within_child_distance(self, child: GTreeNode, b1: int, b2: int) -> float:
        if child.is_leaf:
            row = child.borders.index(b1)
            return float(child.matrix[row, child.leaf_position[b2]])
        return float(
            child.matrix[child.matrix_position[b1], child.matrix_position[b2]]
        )

    def _globalize_matrices(self) -> None:
        """Top-down pass making every internal matrix globally exact.

        The root matrix is global already (its subgraph is the whole
        graph).  For any other internal node n with parent p, a global
        path between two of n's matrix vertices either stays inside n
        (covered by the bottom-up matrix) or leaves and re-enters through
        borders of n; the outside part is covered by p's already-global
        matrix.
        """
        for node in sorted(self.nodes, key=lambda n: n.depth):
            if node.is_leaf or node.parent < 0:
                continue
            parent = self.nodes[node.parent]
            own_borders = [
                b for b in node.borders if b in node.matrix_position
            ]
            if not own_borders:
                continue
            border_positions = [node.matrix_position[b] for b in own_borders]
            parent_positions = [parent.matrix_position[b] for b in own_borders]
            # through[i, j]: best distance from matrix vertex i out to
            # border j of n, using the parent's (already global) matrix:
            # min-plus product of M[:, borders] with P[borders, borders].
            to_borders = node.matrix[:, border_positions]  # (size, b)
            parent_sub = parent.matrix[np.ix_(parent_positions, parent_positions)]
            through = np.min(
                to_borders[:, :, None] + parent_sub[None, :, :], axis=1
            )  # (size, b)
            # corrected[i, j] = min(M[i, j], min_y through[i, y] + M[y, j]).
            from_borders = node.matrix[border_positions, :]  # (b, size)
            detour = np.min(
                through[:, :, None] + from_borders[None, :, :], axis=1
            )  # (size, size)
            np.minimum(node.matrix, detour, out=node.matrix)

    # ------------------------------------------------------------------
    # Query assembly
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Exact network distance assembled through the hierarchy."""
        self.query_count += 1
        if source == target:
            return 0.0
        source_leaf = self.leaf_of[source]
        target_leaf = self.leaf_of[target]
        if source_leaf == target_leaf:
            return self._same_leaf_distance(source, target)
        lca = self._lowest_common_ancestor(source_leaf, target_leaf)
        lca_node = self.nodes[lca]
        source_child = self._child_toward(lca, source_leaf)
        target_child = self._child_toward(lca, target_leaf)
        d_source = self.distances_to_borders(source, source_child)
        d_target = self.distances_to_borders(target, target_child)
        source_borders = self.nodes[source_child].borders
        target_borders = self.nodes[target_child].borders
        if not source_borders or not target_borders:
            return INFINITY
        rows = [lca_node.matrix_position[b] for b in source_borders]
        cols = [lca_node.matrix_position[b] for b in target_borders]
        crossing = lca_node.matrix[np.ix_(rows, cols)]
        self.matrix_operations += crossing.size
        best = np.min(
            np.asarray(d_source)[:, None] + crossing + np.asarray(d_target)[None, :]
        )
        return float(best)

    def _same_leaf_distance(self, source: int, target: int) -> float:
        leaf = self.nodes[self.leaf_of[source]]
        adjacency = self._graph.subgraph_adjacency(leaf.vertices)
        inside = dijkstra_within(adjacency, source).get(target, INFINITY)
        if not leaf.borders:
            return inside
        parent = self.nodes[leaf.parent]
        positions = [parent.matrix_position[b] for b in leaf.borders]
        crossing = parent.matrix[np.ix_(positions, positions)]
        from_source = leaf.matrix[:, leaf.leaf_position[source]]
        to_target = leaf.matrix[:, leaf.leaf_position[target]]
        self.matrix_operations += 2 * crossing.size
        detour = np.min(from_source[:, None] + crossing + to_target[None, :])
        return float(min(inside, detour))

    def distances_to_borders(self, source: int, node_index: int) -> list[float]:
        """Global distances from ``source`` to the borders of a tree node.

        Results are memoised per ``(source, node)`` — the G-tree paper's
        *materialization* — so kNN traversals and repeated point-to-point
        queries from the same vertex reuse partial work.  Call
        :meth:`clear_cache` between workloads.
        """
        cached = self._border_cache.get((source, node_index))
        if cached is not None:
            return cached
        node = self.nodes[node_index]
        leaf_index = self.leaf_of[source]
        if node_index == leaf_index:
            result = self._leaf_border_distances(source)
        else:
            # Ascend: distances to the child-on-the-path's borders, then
            # relax through this node's global matrix.
            child_index = self._child_toward(node_index, leaf_index)
            child_distances = self.distances_to_borders(source, child_index)
            child_borders = self.nodes[child_index].borders
            if not child_borders or not node.borders:
                result = [INFINITY] * len(node.borders)
            else:
                rows = [node.matrix_position[b] for b in child_borders]
                cols = [node.matrix_position[b] for b in node.borders]
                crossing = node.matrix[np.ix_(rows, cols)]
                self.matrix_operations += crossing.size
                result = list(
                    np.min(np.asarray(child_distances)[:, None] + crossing, axis=0)
                )
        self._border_cache[(source, node_index)] = result
        return result

    def _leaf_border_distances(self, source: int) -> list[float]:
        """Global distances from ``source`` to its own leaf's borders."""
        leaf = self.nodes[self.leaf_of[source]]
        if not leaf.borders:
            return []
        parent = self.nodes[leaf.parent]
        inside = leaf.matrix[:, leaf.leaf_position[source]]
        positions = [parent.matrix_position[b] for b in leaf.borders]
        crossing = parent.matrix[np.ix_(positions, positions)]
        self.matrix_operations += crossing.size
        best = np.minimum(inside, np.min(inside[:, None] + crossing, axis=0))
        return list(best)

    def min_distance_to_node(self, source: int, node_index: int) -> float:
        """Lower bound used by hierarchy traversals: min distance from
        ``source`` to any border of the node (0 if source inside)."""
        if self.leaf_of[source] == node_index or self._contains(node_index, source):
            return 0.0
        distances = self.border_distances_any(source, node_index)
        return float(min(distances)) if distances else INFINITY

    def border_distances_any(self, source: int, node_index: int) -> list[float]:
        """Global distances from ``source`` to any node's borders.

        Generalises :meth:`distances_to_borders` (which requires the node
        to be an ancestor of the source's leaf) to arbitrary nodes, with
        the same per-source memoisation — this is what makes repeated
        ``min_distance_to_node`` calls during a kNN traversal cheap.
        """
        if self._contains(node_index, source):
            return self.distances_to_borders(source, node_index)
        cached = self._border_cache.get((source, node_index))
        if cached is not None:
            return cached
        node = self.nodes[node_index]
        parent = self.nodes[node.parent]
        if not node.borders:
            result: list[float] = []
        elif self._contains(parent.index, source):
            # Cross the parent's matrix from the source-side child.
            source_child = self._child_toward(parent.index, self.leaf_of[source])
            incoming = self.distances_to_borders(source, source_child)
            from_borders = self.nodes[source_child].borders
            result = self._relax_through(
                parent, incoming, from_borders, node.borders
            )
        else:
            # Enter the parent through its borders, then cross inside it.
            incoming = self.border_distances_any(source, parent.index)
            result = self._relax_through(
                parent, incoming, parent.borders, node.borders
            )
        self._border_cache[(source, node_index)] = result
        return result

    def _relax_through(
        self,
        node: GTreeNode,
        incoming: list[float],
        from_borders: list[int],
        to_borders: list[int],
    ) -> list[float]:
        """Min-plus step ``out[j] = min_i incoming[i] + M[from_i, to_j]``."""
        if not incoming or not from_borders or not to_borders:
            return [INFINITY] * len(to_borders)
        rows = [node.matrix_position[b] for b in from_borders]
        cols = [node.matrix_position[b] for b in to_borders]
        crossing = node.matrix[np.ix_(rows, cols)]
        self.matrix_operations += crossing.size
        return list(np.min(np.asarray(incoming)[:, None] + crossing, axis=0))

    # ------------------------------------------------------------------
    # Tree helpers
    # ------------------------------------------------------------------
    def _ancestors(self, node_index: int) -> list[int]:
        path = [node_index]
        while self.nodes[path[-1]].parent >= 0:
            path.append(self.nodes[path[-1]].parent)
        return path

    def _lowest_common_ancestor(self, a: int, b: int) -> int:
        ancestors_a = set(self._ancestors(a))
        current = b
        while current not in ancestors_a:
            current = self.nodes[current].parent
        return current

    def _child_toward(self, ancestor: int, descendant: int) -> int:
        """The child of ``ancestor`` on the path to ``descendant``."""
        current = descendant
        while self.nodes[current].parent != ancestor:
            current = self.nodes[current].parent
        return current

    def _contains(self, node_index: int, vertex: int) -> bool:
        current = self.leaf_of[vertex]
        while current >= 0:
            if current == node_index:
                return True
            current = self.nodes[current].parent
        return False

    def leaves(self) -> list[int]:
        """Indices of all leaf nodes."""
        return [n.index for n in self.nodes if n.is_leaf]

    def clear_cache(self) -> None:
        """Drop per-query materialised border distances."""
        self._border_cache.clear()

    def reset_counters(self) -> None:
        super().reset_counters()
        self.matrix_operations = 0

    def memory_bytes(self) -> int:
        per_entry = 8  # float64 numpy entries
        entries = sum(int(node.matrix.size) for node in self.nodes)
        return entries * per_entry + len(self.nodes) * 200
