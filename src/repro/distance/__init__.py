"""Network Distance Module: pluggable exact point-to-point oracles."""

from repro.distance.astar import AStarOracle
from repro.distance.base import DistanceOracle, verify_oracle
from repro.distance.ch import ContractionHierarchy
from repro.distance.composite import CompositeOracle
from repro.distance.dijkstra_oracle import BidirectionalDijkstraOracle, DijkstraOracle
from repro.distance.gtree import GTree, GTreeNode
from repro.distance.hub_labeling import HubLabeling, importance_order
from repro.distance.object_labels import KeywordLabelIndex

__all__ = [
    "AStarOracle",
    "BidirectionalDijkstraOracle",
    "CompositeOracle",
    "ContractionHierarchy",
    "DijkstraOracle",
    "DistanceOracle",
    "GTree",
    "GTreeNode",
    "HubLabeling",
    "KeywordLabelIndex",
    "importance_order",
    "verify_oracle",
]
