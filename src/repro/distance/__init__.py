"""Network Distance Module: pluggable exact point-to-point oracles."""

from repro.distance.astar import AStarOracle
from repro.distance.base import DistanceOracle, verify_oracle
from repro.distance.ch import ContractionHierarchy
from repro.distance.dijkstra_oracle import BidirectionalDijkstraOracle, DijkstraOracle
from repro.distance.gtree import GTree, GTreeNode
from repro.distance.hub_labeling import HubLabeling

__all__ = [
    "AStarOracle",
    "BidirectionalDijkstraOracle",
    "ContractionHierarchy",
    "DijkstraOracle",
    "DistanceOracle",
    "GTree",
    "GTreeNode",
    "HubLabeling",
    "verify_oracle",
]
