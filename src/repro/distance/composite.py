"""SALT-style composite distance oracle: CH + hub labels + CSR batches.

SALT (PAPERS.md) observes that no single shortest-path technique wins
every query class on road networks, and that CH, labeling, and
goal-directed search can share one preprocessing pass.  This oracle
packages that idea for K-SPIN serving:

* **one CH build is shared** — its rank is both a p2p backend and the
  vertex order of the PLL labels, so the composite costs one contraction
  plus one label sweep, not two independent indexes;
* **point-to-point** queries route to the hub labels (one sorted merge;
  the fastest per-query backend) unless :meth:`calibrate` measured CH
  ahead on this graph;
* **pairwise batches** route between vectorised label merges and the
  CSR ``sssp_rows`` kernel on a per-batch cost estimate: a full SSSP
  row touches all ``n`` vertices, a label pass touches
  ``pairs-per-source x avg-label`` entries, so the kernel wins only on
  wide same-source batches (and only when the kernels are enabled);
* **kNN** always routes to the labels (the point of the exercise — see
  :mod:`repro.distance.object_labels`).

The HLL selectivity hook (:meth:`set_selectivity`, wired by
:class:`repro.serve.Engine` from the index sketches) feeds the same
cost estimate *before* a batch exists: :meth:`plan` predicts a keyword
set's candidate volume and reports which refinement backend the
composite would pick, which the serve layer exposes for explainability
and the bench ladder asserts against.

Every routing decision lands in :attr:`route_counts`, so dominated
routing is observable (and gated in ``benchmarks/bench_labels.py``).
All backends are exact, so routing is a pure performance decision —
results are bit-identical whichever way a query goes.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, Sequence

from repro import kernels
from repro.distance.base import DistanceOracle
from repro.distance.ch import ContractionHierarchy
from repro.distance.dijkstra_oracle import DijkstraOracle
from repro.distance.hub_labeling import HubLabeling
from repro.graph.road_network import RoadNetwork


class CompositeOracle(DistanceOracle):
    """Route each distance query to the cheapest exact backend.

    Parameters
    ----------
    graph:
        The road network; contracted once, labeled once.
    witness_settle_limit:
        Passed through to :class:`ContractionHierarchy`.
    """

    name = "Composite"

    def __init__(
        self, graph: RoadNetwork, witness_settle_limit: int = 500
    ) -> None:
        super().__init__()
        self._graph = graph
        self.ch = ContractionHierarchy(graph, witness_settle_limit)
        order = sorted(graph.vertices(), key=lambda v: (-self.ch.rank[v], v))
        self.labeling = HubLabeling(graph, order=order)
        self._sssp = DijkstraOracle(graph)
        self._selectivity: Callable[[str], int] | None = None
        self._p2p_backend = "phl"
        self.route_counts: dict[str, int] = {
            "p2p_phl": 0,
            "p2p_ch": 0,
            "batch_labels": 0,
            "batch_sssp": 0,
            "knn_labels": 0,
        }

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def set_selectivity(self, hook: Callable[[str], int] | None) -> None:
        """Install a ``keyword -> estimated |inv(t)|`` hook (HLL-backed
        in serving) used by :meth:`plan` to predict batch widths."""
        self._selectivity = hook

    def calibrate(
        self, pairs: Sequence[tuple[int, int]], repeats: int = 3
    ) -> dict[str, float]:
        """Measure PHL vs CH point-to-point on sample pairs; route p2p
        to the measured winner from now on.

        Returns the median per-pass seconds per backend.  Calibration
        only ever changes *speed* — both backends are exact.
        """
        if not pairs:
            raise ValueError("calibration needs at least one sample pair")
        timings: dict[str, float] = {}
        for label, oracle in (("phl", self.labeling), ("ch", self.ch)):
            passes = []
            for _ in range(repeats):
                start = time.perf_counter()
                for s, t in pairs:
                    oracle.distance(s, t)
                passes.append(time.perf_counter() - start)
            timings[label] = statistics.median(passes)
        self._p2p_backend = min(timings, key=lambda k: (timings[k], k))
        return timings

    @property
    def p2p_backend(self) -> str:
        """Current point-to-point routing target (``"phl"`` or ``"ch"``)."""
        return self._p2p_backend

    # ------------------------------------------------------------------
    # DistanceOracle surface
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        self.query_count += 1
        if self._p2p_backend == "ch":
            self.route_counts["p2p_ch"] += 1
            return self.ch.distance(source, target)
        self.route_counts["p2p_phl"] += 1
        return self.labeling.distance(source, target)

    def distances_many(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> list[float]:
        """Pairwise batch, routed by the per-source work estimate.

        A label pass costs about ``pairs-per-source x avg-label`` array
        reads per distinct source (plus one densify); a kernel SSSP row
        always costs ``n``.  The kernel therefore wins exactly when the
        per-source label work reaches ``n`` — wide batches over few
        sources — and only when the CSR kernels are available.
        """
        if len(sources) != len(targets):
            raise ValueError(
                f"pairwise call needs equal lengths, got "
                f"{len(sources)} sources and {len(targets)} targets"
            )
        if not sources:
            return []
        if self._use_sssp_rows(len(sources), len(set(int(s) for s in sources))):
            self.route_counts["batch_sssp"] += len(sources)
            out = self._sssp.distances_many(sources, targets)
        else:
            self.route_counts["batch_labels"] += len(sources)
            out = self.labeling.distances_many(sources, targets)
        self.query_count += len(out)
        return out

    def knn_many(
        self, sources: Sequence[int], candidates: Sequence[int], k: int
    ) -> list[list[tuple[int, float]]]:
        """Per-source k nearest candidates — always the label backend."""
        self.route_counts["knn_labels"] += len(list(sources))
        out = self.labeling.knn_many(sources, candidates, k)
        self.query_count += sum(len(row) for row in out)
        return out

    def memory_bytes(self) -> int:
        """CH shortcuts plus label arrays (the shared preprocessing)."""
        return self.ch.memory_bytes() + self.labeling.memory_bytes()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _use_sssp_rows(self, num_pairs: int, distinct_sources: int) -> bool:
        if not kernels.enabled() or distinct_sources == 0:
            return False
        per_source = num_pairs / distinct_sources
        label_work = per_source * max(1.0, self.labeling.average_label_size())
        return label_work >= self._graph.num_vertices

    def plan(self, keywords: Sequence[str], k: int) -> dict:
        """Predict how a keyword query's refinement would route.

        Uses the selectivity hook (HLL cardinalities in serving, exact
        inverted sizes otherwise unavailable -> 0) to estimate the
        candidate batch one query vertex would refine, then applies the
        same rule as :meth:`distances_many`.  Advisory only — actual
        batches re-decide on their true shape.
        """
        if self._selectivity is None:
            predicted = 0
        else:
            predicted = sum(
                self._selectivity(t) for t in dict.fromkeys(keywords)
            )
        backend = (
            "sssp_rows" if self._use_sssp_rows(max(predicted, k), 1) else "labels"
        )
        return {
            "predicted_candidates": predicted,
            "p2p_backend": self._p2p_backend,
            "batch_backend": backend,
            "average_label_size": self.labeling.average_label_size(),
        }
