"""2-hop hub labeling by pruned landmark labeling (PLL).

The paper's fastest variant, KS-PHL, plugs Pruned Highway Labeling
(Akiba et al., ALENEX 2014) into K-SPIN.  PHL is a road-network-optimised
member of the 2-hop labeling family: every vertex stores a *label* of
``(hub, distance)`` pairs such that any two vertices share a hub on their
shortest path; a query is a linear merge of two labels.

We implement the family's canonical exact algorithm, pruned landmark
labeling (PLL), which shares PHL's query-time profile — O(|label|)
lookups, no graph traversal, large index — which is exactly the role PHL
plays in the paper's evaluation (fast queries, highest space cost).  The
substitution is documented in DESIGN.md §5.

Vertex order drives label size.  Road networks have no natural hubs, so
callers should pass an importance order (e.g. descending Contraction
Hierarchies rank); the default degree order is provided for standalone
use.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

from repro.distance.base import DistanceOracle
from repro.graph.road_network import RoadNetwork

INFINITY = math.inf


class HubLabeling(DistanceOracle):
    """Pruned 2-hop labeling index (PLL), the repo's "PHL" oracle.

    Parameters
    ----------
    graph:
        Road network to index.
    order:
        Vertices from most to least important.  Defaults to descending
        degree (with vertex id tiebreak).  Pass ``ch.rank`` order for the
        small labels used in benchmarks.
    """

    name = "PHL"

    def __init__(self, graph: RoadNetwork, order: Sequence[int] | None = None) -> None:
        super().__init__()
        self._n = graph.num_vertices
        if order is None:
            order = sorted(
                graph.vertices(), key=lambda v: (-graph.degree(v), v)
            )
        if sorted(order) != list(range(self._n)):
            raise ValueError("order must be a permutation of all vertices")
        # labels[v] maps hub -> distance; hubs are ordinal positions in
        # the importance order so pruning queries can compare cheaply.
        self._labels: list[dict[int, float]] = [dict() for _ in range(self._n)]
        self._build(graph, list(order))

    def _build(self, graph: RoadNetwork, order: list[int]) -> None:
        labels = self._labels
        neighbors = graph.neighbors
        for hub in order:
            hub_label = labels[hub]
            distances = {hub: 0.0}
            heap = [(0.0, hub)]
            while heap:
                dist_u, u = heapq.heappop(heap)
                if dist_u > distances.get(u, INFINITY):
                    continue
                # Prune: if existing labels already certify a distance
                # <= dist_u between hub and u, u (and its subtree) need
                # no new label entry.
                if self._label_query(hub_label, labels[u]) <= dist_u:
                    continue
                labels[u][hub] = dist_u
                for v, weight in neighbors(u):
                    candidate = dist_u + weight
                    if candidate < distances.get(v, INFINITY):
                        distances[v] = candidate
                        heapq.heappush(heap, (candidate, v))

    @staticmethod
    def _label_query(label_a: dict[int, float], label_b: dict[int, float]) -> float:
        if len(label_a) > len(label_b):
            label_a, label_b = label_b, label_a
        best = INFINITY
        for hub, dist_a in label_a.items():
            dist_b = label_b.get(hub)
            if dist_b is not None and dist_a + dist_b < best:
                best = dist_a + dist_b
        return best

    def distance(self, source: int, target: int) -> float:
        """Exact distance by merging the two hub labels."""
        self.query_count += 1
        if source == target:
            return 0.0
        return self._label_query(self._labels[source], self._labels[target])

    def label_size(self, v: int) -> int:
        """Number of hub entries in the label of ``v``."""
        return len(self._labels[v])

    def average_label_size(self) -> float:
        """Mean label entries per vertex (index-quality metric)."""
        return sum(len(l) for l in self._labels) / self._n

    def memory_bytes(self) -> int:
        per_entry = 100  # dict entry: int key + float value, CPython cost
        return sum(len(l) for l in self._labels) * per_entry
