"""2-hop hub labeling by pruned landmark labeling (PLL), array-backed.

The paper's fastest variant, KS-PHL, plugs Pruned Highway Labeling
(Akiba et al., ALENEX 2014) into K-SPIN.  PHL is a road-network-optimised
member of the 2-hop labeling family: every vertex stores a *label* of
``(hub, distance)`` pairs such that any two vertices share a hub on their
shortest path; a query is a linear merge of two labels.

We implement the family's canonical exact algorithm, pruned landmark
labeling (PLL), which shares PHL's query-time profile — O(|label|)
lookups, no graph traversal, large index — which is exactly the role PHL
plays in the paper's evaluation (fast queries, highest space cost).  The
substitution is documented in DESIGN.md §5.

Storage layout
--------------
Labels are *flat sorted arrays*, not dicts: three numpy arrays

* ``_indptr`` — ``int64[n + 1]``; vertex ``v``'s label occupies the
  slice ``_indptr[v]:_indptr[v + 1]`` of the other two;
* ``_hub_ids`` — ``int32``; hub *ordinals* (positions in the importance
  order), ascending within each vertex's slice;
* ``_hub_dists`` — ``float64``; the exact hub distances.

mirroring :class:`repro.kernels.csr.CSRGraph`.  A point-to-point query
is one sorted merge over two contiguous slices; batched queries
(:meth:`distances_many`, :meth:`knn_many`) densify one source label and
vectorise over whole target label rows.  The arrays pickle as-is and
are never mutated after construction, so fork-after-build cluster
workers share them copy-on-write and rehydrated workers answer
bit-identically (the index is a pure function of graph + order).

Vertex order drives label size.  Road networks have no natural hubs, so
the default order is descending Contraction Hierarchies rank
(``order="ch"`` — the order the paper's KS-PHL evaluation implies);
``order="degree"`` restores the cheap standalone order, and any explicit
permutation is accepted.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

import numpy as np

from repro.distance.base import DistanceOracle
from repro.graph.road_network import RoadNetwork

INFINITY = math.inf

#: Estimated CPython cost of one ``{int: float}`` dict entry — what the
#: pre-array layout charged per label entry.  Kept so benchmarks can
#: report the before/after footprint honestly.
_DICT_ENTRY_BYTES = 100


def importance_order(graph: RoadNetwork, kind: str = "ch") -> list[int]:
    """A most-to-least-important vertex permutation for label builds.

    ``"ch"`` contracts the graph and returns descending CH rank (small
    labels, costs one CH construction); ``"degree"`` returns descending
    degree with vertex-id tiebreak (cheap, larger labels).  Both are
    deterministic functions of the graph.
    """
    if kind == "degree":
        return sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))
    if kind == "ch":
        from repro.distance.ch import ContractionHierarchy

        ch = ContractionHierarchy(graph)
        return sorted(graph.vertices(), key=lambda v: (-ch.rank[v], v))
    raise ValueError(f"unknown importance order {kind!r}; pick 'ch' or 'degree'")


class HubLabeling(DistanceOracle):
    """Pruned 2-hop labeling index (PLL), the repo's "PHL" oracle.

    Parameters
    ----------
    graph:
        Road network to index.
    order:
        Vertices from most to least important: an explicit permutation,
        or ``"ch"`` (default — descending Contraction Hierarchies rank,
        the small labels used in benchmarks) or ``"degree"``.
    """

    name = "PHL"

    def __init__(
        self, graph: RoadNetwork, order: Sequence[int] | str = "ch"
    ) -> None:
        super().__init__()
        self._n = graph.num_vertices
        if isinstance(order, str):
            order_list = importance_order(graph, order)
        else:
            order_list = [int(v) for v in order]
            if sorted(order_list) != list(range(self._n)):
                raise ValueError("order must be a permutation of all vertices")
        self._order = order_list
        hubs, dists = self._build(graph, order_list)
        # Flatten into the CSR-style layout.  Hub ordinals were appended
        # in increasing build order, so every per-vertex slice is
        # already sorted — the invariant every merge below relies on.
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        for v in range(self._n):
            indptr[v + 1] = indptr[v] + len(hubs[v])
        self._indptr = indptr
        self._hub_ids = np.asarray(
            [h for row in hubs for h in row], dtype=np.int32
        )
        self._hub_dists = np.asarray(
            [d for row in dists for d in row], dtype=np.float64
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(
        self, graph: RoadNetwork, order: list[int]
    ) -> tuple[list[list[int]], list[list[float]]]:
        """Pruned landmark labeling over the cached CSR arrays.

        One pruned Dijkstra per hub, most important first.  The CSR
        view's flat ``indptr``/``indices``/``weights`` (materialised as
        python lists once — list indexing beats numpy scalar indexing in
        this python-level inner loop) replace per-vertex adjacency
        tuples, and labels grow as parallel append-only lists sorted by
        hub ordinal.
        """
        csr = graph.csr()
        indptr: list[int] = csr.indptr.tolist()
        heads: list[int] = csr.indices.tolist()
        weights: list[float] = csr.weights.tolist()
        label_hubs: list[list[int]] = [[] for _ in range(self._n)]
        label_dists: list[list[float]] = [[] for _ in range(self._n)]
        for ordinal, hub in enumerate(order):
            hub_hubs = label_hubs[hub]
            hub_dists = label_dists[hub]
            distances = {hub: 0.0}
            heap = [(0.0, hub)]
            while heap:
                dist_u, u = heapq.heappop(heap)
                if dist_u > distances.get(u, INFINITY):
                    continue
                # Prune: if existing labels already certify a distance
                # <= dist_u between hub and u, u (and its subtree) need
                # no new label entry.
                if (
                    _merge_lists(
                        hub_hubs, hub_dists, label_hubs[u], label_dists[u]
                    )
                    <= dist_u
                ):
                    continue
                label_hubs[u].append(ordinal)
                label_dists[u].append(dist_u)
                for arc in range(indptr[u], indptr[u + 1]):
                    v = heads[arc]
                    candidate = dist_u + weights[arc]
                    if candidate < distances.get(v, INFINITY):
                        distances[v] = candidate
                        heapq.heappush(heap, (candidate, v))
        return label_hubs, label_dists

    # ------------------------------------------------------------------
    # Point-to-point queries
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Exact distance: one sorted merge of two contiguous label rows."""
        self.query_count += 1
        if source == target:
            return 0.0
        indptr = self._indptr
        return _merge_arrays(
            self._hub_ids,
            self._hub_dists,
            int(indptr[source]),
            int(indptr[source + 1]),
            int(indptr[target]),
            int(indptr[target + 1]),
        )

    def distances_many(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> list[float]:
        """Pairwise distances with one merge pass per target label.

        Pairs are grouped by source; each distinct source's label is
        densified once into a hub-indexed vector, after which every
        target costs a single vectorised gather-add-min over its
        contiguous label row — no per-pair python merge, no sequential
        ``distance`` shim.
        """
        if len(sources) != len(targets):
            raise ValueError(
                f"pairwise call needs equal lengths, got "
                f"{len(sources)} sources and {len(targets)} targets"
            )
        if not sources:
            return []
        out = [0.0] * len(sources)
        by_source: dict[int, list[int]] = {}
        for position, s in enumerate(sources):
            by_source.setdefault(int(s), []).append(position)
        indptr = self._indptr
        hub_ids = self._hub_ids
        hub_dists = self._hub_dists
        for s, positions in by_source.items():
            dense = self.dense_source_vector(s)
            for position in positions:
                t = int(targets[position])
                if t == s:
                    continue  # out[position] stays 0.0
                lo, hi = int(indptr[t]), int(indptr[t + 1])
                if lo == hi:
                    out[position] = INFINITY
                    continue
                sums = dense[hub_ids[lo:hi]] + hub_dists[lo:hi]
                out[position] = float(sums.min())
        self.query_count += len(out)
        return out

    def knn_many(
        self, sources: Sequence[int], candidates: Sequence[int], k: int
    ) -> list[list[tuple[int, float]]]:
        """Per-source k nearest candidates, vectorised over label rows.

        One dense source vector per source, one gather-add per
        candidate-label row via a single segmented reduction
        (``np.minimum.reduceat``) — the whole candidate set is scored
        in one numpy dispatch per source.  Tie-break and result shape
        match the sequential definition exactly.
        """
        if k < 1:
            raise ValueError("k must be positive")
        candidate_list = [int(c) for c in candidates]
        if not candidate_list:
            return [[] for _ in sources]
        indptr = self._indptr
        starts = indptr[candidate_list]
        ends = indptr[np.asarray(candidate_list, dtype=np.int64) + 1]
        widths = ends - starts
        # Concatenated label rows of every candidate, built once and
        # reused across all sources.
        gather = _row_gather_index(starts, widths)
        cand_hubs = self._hub_ids[gather]
        cand_dists = self._hub_dists[gather]
        # reduceat needs each segment non-empty; empty labels (isolated
        # vertices) are padded with one sentinel that always scores inf.
        segment_offsets, padded_hubs, padded_dists, empty_mask = _pad_segments(
            widths, cand_hubs, cand_dists
        )
        out: list[list[tuple[int, float]]] = []
        for s in sources:
            s = int(s)
            dense = self.dense_source_vector(s)
            sums = dense[padded_hubs] + padded_dists
            per_candidate = np.minimum.reduceat(sums, segment_offsets)
            per_candidate[empty_mask] = INFINITY
            self.query_count += len(candidate_list)
            scored = sorted(
                ((0.0 if c == s else float(d)), c)
                for c, d in zip(candidate_list, per_candidate)
            )
            out.append([(c, d) for d, c in scored[:k] if d != INFINITY])
        return out

    def dense_source_vector(self, source: int) -> np.ndarray:
        """``float64[num hubs]`` of hub distances from ``source``.

        ``inf`` for hubs absent from the label.  This is the shared
        kernel of every batched query: densifying once turns each
        target-label merge into a vectorised gather.
        """
        lo, hi = int(self._indptr[source]), int(self._indptr[source + 1])
        dense = np.full(self._n, INFINITY, dtype=np.float64)
        dense[self._hub_ids[lo:hi]] = self._hub_dists[lo:hi]
        return dense

    # ------------------------------------------------------------------
    # Label access (object-label building, diagnostics)
    # ------------------------------------------------------------------
    def label(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(hub ordinals, distances)`` views of ``v``'s label row."""
        lo, hi = int(self._indptr[v]), int(self._indptr[v + 1])
        return self._hub_ids[lo:hi], self._hub_dists[lo:hi]

    def hub_vertex(self, ordinal: int) -> int:
        """The graph vertex behind a hub ordinal."""
        return self._order[ordinal]

    @property
    def num_vertices(self) -> int:
        return self._n

    def label_size(self, v: int) -> int:
        """Number of hub entries in the label of ``v``."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def average_label_size(self) -> float:
        """Mean label entries per vertex (index-quality metric)."""
        return float(self._indptr[-1]) / self._n

    def num_label_entries(self) -> int:
        """Total ``(hub, distance)`` entries across all labels."""
        return int(self._indptr[-1])

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """The real label storage: exact array footprint plus the order.

        The previous dict-of-dicts layout *estimated* ~100 bytes per
        entry and ignored the per-vertex dict headers; the flat layout
        makes the honest number a property of the arrays themselves
        (12 bytes per entry + the indptr and order vectors).
        """
        return int(
            self._indptr.nbytes
            + self._hub_ids.nbytes
            + self._hub_dists.nbytes
            + 8 * self._n  # the ordinal -> vertex order list payload
        )

    def legacy_dict_bytes(self) -> int:
        """What the pre-array dict-of-dicts layout charged for the same
        labels — kept so benchmarks can report the before/after."""
        return self.num_label_entries() * _DICT_ENTRY_BYTES


def _merge_lists(
    hubs_a: list[int],
    dists_a: list[float],
    hubs_b: list[int],
    dists_b: list[float],
) -> float:
    """Sorted two-pointer merge of two in-build label lists."""
    best = INFINITY
    i = j = 0
    len_a, len_b = len(hubs_a), len(hubs_b)
    while i < len_a and j < len_b:
        ha, hb = hubs_a[i], hubs_b[j]
        if ha == hb:
            total = dists_a[i] + dists_b[j]
            if total < best:
                best = total
            i += 1
            j += 1
        elif ha < hb:
            i += 1
        else:
            j += 1
    return best


def _merge_arrays(
    hub_ids: np.ndarray,
    hub_dists: np.ndarray,
    a_lo: int,
    a_hi: int,
    b_lo: int,
    b_hi: int,
) -> float:
    """Sorted merge of two label rows of the flat arrays."""
    common, idx_a, idx_b = np.intersect1d(
        hub_ids[a_lo:a_hi],
        hub_ids[b_lo:b_hi],
        assume_unique=True,
        return_indices=True,
    )
    if common.size == 0:
        return INFINITY
    return float(
        (hub_dists[a_lo:a_hi][idx_a] + hub_dists[b_lo:b_hi][idx_b]).min()
    )


def _row_gather_index(starts: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Indices selecting the concatenation of ``[s, s+w)`` ranges.

    Branch-free multi-range arange: seed an all-ones step vector, then
    overwrite the step at each segment boundary with the jump from the
    previous range's end to the next range's start; a cumulative sum
    yields every index in one pass.
    """
    total = int(widths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    nonzero = widths > 0
    nz_starts = starts[nonzero].astype(np.int64)
    nz_widths = widths[nonzero].astype(np.int64)
    steps = np.ones(total, dtype=np.int64)
    steps[0] = nz_starts[0]
    if len(nz_starts) > 1:
        boundaries = np.cumsum(nz_widths)[:-1]
        prev_ends = nz_starts[:-1] + nz_widths[:-1]
        steps[boundaries] = nz_starts[1:] - prev_ends + 1
    return np.cumsum(steps)


def _pad_segments(
    widths: np.ndarray, hubs: np.ndarray, dists: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Segment offsets for ``np.minimum.reduceat`` over padded rows.

    Empty rows get one sentinel entry (hub 0 with an ``inf`` distance)
    so every reduceat segment is non-empty; the returned mask marks
    them for post-reduction overwrite.
    """
    empty_mask = widths == 0
    if not empty_mask.any():
        offsets = np.zeros(len(widths), dtype=np.int64)
        np.cumsum(widths[:-1], out=offsets[1:])
        return offsets, hubs, dists, empty_mask
    padded_widths = np.where(empty_mask, 1, widths)
    offsets = np.zeros(len(padded_widths), dtype=np.int64)
    np.cumsum(padded_widths[:-1], out=offsets[1:])
    total = int(padded_widths.sum())
    out_hubs = np.zeros(total, dtype=hubs.dtype)
    out_dists = np.full(total, INFINITY, dtype=np.float64)
    fill = np.ones(total, dtype=bool)
    fill[offsets[empty_mask]] = False
    out_hubs[fill] = hubs
    out_dists[fill] = dists
    return offsets, out_hubs, out_dists, empty_mask
